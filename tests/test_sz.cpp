// Tests for the SZ-style baseline pipeline: error-bound guarantee,
// container integrity, predictor modes, stats.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "metrics/metrics.hpp"
#include "quant/dual_quant.hpp"
#include "sz/compressor.hpp"
#include "sz/container.hpp"
#include "sz/fused_encode.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

Field make_field(const std::string& kind, const Shape& shape,
                 std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape.ndim() >= 2 ? shape[shape.ndim() - 1] : shape[0];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w) / static_cast<double>(w);
    const double y = static_cast<double>(i / w) / 64.0;
    if (kind == "smooth")
      a[i] = static_cast<float>(50.0 * std::sin(6.28 * x) * std::cos(3.0 * y) +
                                10.0 * x);
    else if (kind == "noisy")
      a[i] = static_cast<float>(std::sin(12.0 * x) + rng.normal(0.0, 0.5));
    else if (kind == "constant")
      a[i] = 3.25f;
    else if (kind == "spiky") {
      a[i] = static_cast<float>(rng.normal(0.0, 1.0));
      if (rng.uniform() < 0.001)
        a[i] = static_cast<float>(rng.normal(0.0, 5000.0));
    }
  }
  return Field(kind, std::move(a));
}

using SweepCase = std::tuple<std::string, int /*rank*/, double /*rel eb*/,
                             SzPredictor>;

class SzBoundSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SzBoundSweep, ErrorBoundHolds) {
  const auto& [kind, rank, rel_eb, predictor] = GetParam();
  const Shape shape = rank == 1   ? Shape{4096}
                      : rank == 2 ? Shape{64, 96}
                                  : Shape{12, 24, 24};
  const Field field = make_field(kind, shape, 1234 + rank);

  SzOptions opt;
  opt.eb = ErrorBound::relative(rel_eb);
  opt.predictor = predictor;
  SzStats stats;
  const auto stream = sz_compress(field, opt, &stats);
  const Field out = sz_decompress(stream);

  const double abs_eb = opt.eb.absolute_for(field.value_range());
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, field));
  EXPECT_EQ(out.name(), field.name());
  EXPECT_EQ(out.shape(), field.shape());
  EXPECT_GT(stats.compression_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    KindsRanksBoundsPredictors, SzBoundSweep,
    ::testing::Combine(
        ::testing::Values("smooth", "noisy", "spiky"),
        ::testing::Values(1, 2, 3),
        ::testing::Values(5e-3, 1e-3, 1e-4),
        ::testing::Values(SzPredictor::kLorenzo1, SzPredictor::kLorenzo2,
                          SzPredictor::kLorenzoRegression)));

TEST(Sz, AbsoluteModeBound) {
  const Field field = make_field("smooth", Shape{48, 48}, 9);
  SzOptions opt;
  opt.eb = ErrorBound::absolute(0.05);
  const auto stream = sz_compress(field, opt);
  const Field out = sz_decompress(stream);
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            0.05 * (1.0 + 1e-9));
}

TEST(Sz, ConstantFieldCompressesExtremely) {
  const Field field = make_field("constant", Shape{64, 64}, 0);
  SzOptions opt;
  SzStats stats;
  const auto stream = sz_compress(field, opt, &stats);
  const Field out = sz_decompress(stream);
  EXPECT_GT(stats.compression_ratio, 50.0);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.array()[i], 3.25f, 1e-3);
}

TEST(Sz, ReconstructMatchesDecompressBitExactly) {
  const Field field = make_field("smooth", Shape{32, 40}, 17);
  SzOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  const auto stream = sz_compress(field, opt);
  const Field via_stream = sz_decompress(stream);
  const Field direct = sz_reconstruct(field, opt);
  EXPECT_EQ(via_stream.array().vec(), direct.array().vec());
}

TEST(Sz, SmallRadiusForcesOutliersButStaysCorrect) {
  const Field field = make_field("spiky", Shape{4000}, 23);
  SzOptions opt;
  opt.eb = ErrorBound::relative(1e-4);
  opt.quant_radius = 4;  // nearly everything escapes
  const auto stream = sz_compress(field, opt);
  const Field out = sz_decompress(stream);
  const double abs_eb = opt.eb.absolute_for(field.value_range());
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, field));
}

TEST(Sz, SmootherDataCompressesBetter) {
  const Field smooth = make_field("smooth", Shape{64, 64}, 2);
  const Field noisy = make_field("noisy", Shape{64, 64}, 2);
  SzOptions opt;
  SzStats s1, s2;
  sz_compress(smooth, opt, &s1);
  sz_compress(noisy, opt, &s2);
  EXPECT_GT(s1.compression_ratio, s2.compression_ratio);
}

TEST(Sz, TighterBoundCostsMoreBits) {
  const Field field = make_field("smooth", Shape{64, 64}, 3);
  SzStats loose, tight;
  SzOptions opt;
  opt.eb = ErrorBound::relative(1e-2);
  sz_compress(field, opt, &loose);
  opt.eb = ErrorBound::relative(1e-5);
  sz_compress(field, opt, &tight);
  EXPECT_GT(loose.compression_ratio, tight.compression_ratio);
}

TEST(Sz, StatsAccounting) {
  const Field field = make_field("smooth", Shape{50, 40}, 4);
  SzOptions opt;
  SzStats stats;
  const auto stream = sz_compress(field, opt, &stats);
  EXPECT_EQ(stats.original_bytes, 50u * 40u * 4u);
  EXPECT_EQ(stats.compressed_bytes, stream.size());
  EXPECT_NEAR(stats.bit_rate,
              8.0 * stream.size() / (50.0 * 40.0), 1e-12);
  EXPECT_GT(stats.abs_eb, 0.0);
}

TEST(DeltaCodec, RoundtripWithEscapes) {
  // Direct unit test of the delta coder: values near the prediction code
  // as deltas, far values escape to the outlier list.
  const std::uint32_t radius = 8;
  std::vector<std::int32_t> codes{5,  6,    7,  1000000, 8,
                                  -3, -900, 10, 11,      12};
  std::vector<std::int64_t> preds{5, 5, 5, 5, 5, 0, 0, 10, 10, 10};
  const auto payload = encode_deltas(codes, preds, radius);

  DeltaDecoder decoder(payload, radius);
  for (std::size_t i = 0; i < codes.size(); ++i)
    EXPECT_EQ(decoder.next(preds[i]), codes[i]) << "at " << i;
}

TEST(DeltaCodec, EscapeThresholdBoundary) {
  // zigzag(delta) == 2*radius is the first escaping value; 2*radius - 1
  // still codes directly.
  const std::uint32_t radius = 4;  // escape symbol index 8
  // zigzag: delta 4 -> 8 (escape), delta -4 -> 7 (direct).
  std::vector<std::int32_t> codes{4, -4};
  std::vector<std::int64_t> preds{0, 0};
  const auto payload = encode_deltas(codes, preds, radius);
  DeltaDecoder decoder(payload, radius);
  EXPECT_EQ(decoder.next(0), 4);
  EXPECT_EQ(decoder.next(0), -4);
}

TEST(DeltaCodec, MismatchedSizesRejected) {
  std::vector<std::int32_t> codes{1, 2, 3};
  std::vector<std::int64_t> preds{1, 2};
  std::vector<std::int64_t> preds3{1, 2, 3};
  EXPECT_THROW(encode_deltas(codes, preds, 8), InvalidArgument);
  EXPECT_THROW(encode_deltas(codes, preds3, 1), InvalidArgument);
}

TEST(DeltaCodec, WrongRadiusAtDecodeDetected) {
  std::vector<std::int32_t> codes{1, 2, 3, 4};
  std::vector<std::int64_t> preds{1, 2, 3, 4};
  const auto payload = encode_deltas(codes, preds, 16);
  EXPECT_THROW(DeltaDecoder(payload, 32), CorruptStream);
}

TEST(DeltaCodec, ExtremeCodesRoundTripWithLorenzoPredictions) {
  // Regression test for the encoder/decoder prediction divergence: the
  // encoder used to clamp bulk Lorenzo predictions to int32 while the
  // decoder predicted in unclamped int64, so a freshly encoded stream with
  // codes near the int32 limit failed to decode. This mirrors exactly what
  // sz_compress/sz_decompress do per point.
  const std::uint32_t radius = 1u << 24;
  I32Array codes(Shape{64});
  for (std::size_t i = 0; i < 64; ++i)
    codes(i) = (i % 2 == 0 ? 1 : -1) * (INT32_MAX - static_cast<int>(i));

  for (auto order : {LorenzoOrder::kOne, LorenzoOrder::kTwo}) {
    const I64Array preds = lorenzo_predict_all(codes, order);
    const auto payload = encode_deltas(codes.span(), preds.span(), radius);
    DeltaDecoder decoder(payload, radius);
    I32Array out(Shape{64});
    for (std::size_t i = 0; i < 64; ++i)
      out(i) = decoder.next(lorenzo_at_1d(out, i, order));
    EXPECT_EQ(out.vec(), codes.vec());
  }
}

TEST(DeltaCodec, SingleSymbolAlphabetRoundtrip) {
  // Perfect prediction everywhere: exactly one used Huffman symbol.
  std::vector<std::int32_t> codes(100, 7);
  std::vector<std::int64_t> preds(100, 7);
  const auto payload = encode_deltas(codes, preds, 8);
  DeltaDecoder decoder(payload, 8);
  for (std::size_t i = 0; i < codes.size(); ++i)
    EXPECT_EQ(decoder.next(preds[i]), codes[i]);
}

TEST(DeltaCodec, EscapeOnlyAlphabetRoundtrip) {
  // Every delta beyond the radius: the alphabet degenerates to the escape
  // symbol alone and all values travel through the outlier list.
  std::vector<std::int32_t> codes{100000, -100000, 90000, -90001};
  std::vector<std::int64_t> preds{0, 0, 0, 0};
  const auto payload = encode_deltas(codes, preds, 4);
  DeltaDecoder decoder(payload, 4);
  for (std::size_t i = 0; i < codes.size(); ++i)
    EXPECT_EQ(decoder.next(preds[i]), codes[i]);
}

TEST(DeltaCodec, TinyRadiusRoundtrip) {
  const std::uint32_t radius = 2;  // smallest legal radius
  std::vector<std::int32_t> codes{0, 1, -1, 2, -2, 5, 0, 1};
  std::vector<std::int64_t> preds{0, 0, 0, 0, 0, 0, 0, 0};
  const auto payload = encode_deltas(codes, preds, radius);
  DeltaDecoder decoder(payload, radius);
  for (std::size_t i = 0; i < codes.size(); ++i)
    EXPECT_EQ(decoder.next(preds[i]), codes[i]);
}

TEST(Sz, FusedEncodeMatchesSerialReference) {
  // The fused quantize+predict+symbolize pass must produce byte-identical
  // payloads to the serial reference composition, for every rank and order
  // — and therefore for every XFC_THREADS value (the *_mt4 ctest variant
  // re-runs this with a live pool).
  for (auto shape : {Shape{4096}, Shape{64, 96}, Shape{12, 24, 24},
                     Shape{1, 64}, Shape{2, 2}, Shape{3, 3, 3}}) {
    const Field field = make_field("smooth", shape, 321 + shape.ndim());
    const double abs_eb = 1e-3 * field.value_range();
    for (auto order : {LorenzoOrder::kOne, LorenzoOrder::kTwo}) {
      const auto fused = fused_lorenzo_encode(field.array(), abs_eb, order,
                                              kDefaultQuantRadius);
      const I32Array codes = prequantize(field.array(), abs_eb);
      const I64Array preds = lorenzo_predict_all(codes, order);
      const auto reference =
          encode_deltas(codes.span(), preds.span(), kDefaultQuantRadius);
      EXPECT_EQ(fused.codes.vec(), codes.vec())
          << "ndim " << shape.ndim() << " order " << static_cast<int>(order);
      EXPECT_EQ(fused.payload, reference)
          << "ndim " << shape.ndim() << " order " << static_cast<int>(order);
    }
  }
}

TEST(Sz, FusedEncodeRejectsEmptyInput) {
  EXPECT_THROW(fused_lorenzo_encode(F32Array(Shape{1, 0}), 0.5,
                                    LorenzoOrder::kOne, 8),
               InvalidArgument);
}

TEST(Sz, UnknownPredictorByteThrows) {
  // A syntactically valid container whose predictor byte is out of range
  // must be rejected, not silently decoded as Lorenzo garbage.
  ByteWriter body;
  write_shape(body, Shape{4, 4});
  body.str("x");
  body.u8(0);       // eb mode
  body.f64(1e-3);   // eb value
  body.f64(0.5);    // abs eb
  body.u8(7);       // invalid predictor
  body.varint(kDefaultQuantRadius);
  body.blob({});
  const auto stream = frame_container(CodecId::kSz, body.bytes());
  try {
    sz_decompress(stream);
    FAIL() << "unknown predictor byte decoded without error";
  } catch (const CorruptStream& e) {
    EXPECT_NE(std::string(e.what()).find("predictor"), std::string::npos);
  }
}

TEST(Sz, DegenerateExtents) {
  for (auto shape : {Shape{1, 64}, Shape{64, 1}, Shape{1, 1, 64},
                     Shape{1, 64, 1}, Shape{2, 2}}) {
    Field f("deg", F32Array(shape));
    for (std::size_t i = 0; i < f.size(); ++i)
      f.array()[i] = static_cast<float>(std::sin(i / 3.0) * 5.0);
    SzOptions opt;
    opt.eb = ErrorBound::absolute(1e-3);
    const Field out = sz_decompress(sz_compress(f, opt));
    EXPECT_LE(max_abs_error(f.array().span(), out.array().span()),
              test::bound_tolerance(1e-3, f))
        << "ndim " << shape.ndim();
  }
}

TEST(Sz, FieldNamePreservedVerbatim) {
  Field f("weird name \xF0\x9F\x8C\x8A/..\\0", F32Array(Shape{8, 8}));
  for (std::size_t i = 0; i < 64; ++i)
    f.array()[i] = static_cast<float>(i);
  const Field out = sz_decompress(sz_compress(f, SzOptions{}));
  EXPECT_EQ(out.name(), f.name());
}

TEST(SzContainer, CorruptionIsDetected) {
  const Field field = make_field("smooth", Shape{32, 32}, 5);
  auto stream = sz_compress(field, SzOptions{});

  // Flip one byte in the middle.
  auto corrupted = stream;
  corrupted[corrupted.size() / 2] ^= 0xFF;
  EXPECT_THROW(sz_decompress(corrupted), CorruptStream);

  // Truncation.
  auto truncated = stream;
  truncated.resize(truncated.size() - 5);
  EXPECT_THROW(sz_decompress(truncated), CorruptStream);

  // Bad magic.
  auto bad_magic = stream;
  bad_magic[0] = 'Y';
  EXPECT_THROW(sz_decompress(bad_magic), CorruptStream);
}

TEST(SzContainer, FrameParsesOwnOutput) {
  std::vector<std::uint8_t> body{1, 2, 3, 4, 5};
  const auto framed = frame_container(CodecId::kSz, body);
  const auto parsed = parse_container(framed);
  EXPECT_EQ(parsed.codec, CodecId::kSz);
  EXPECT_EQ(std::vector<std::uint8_t>(parsed.body.begin(), parsed.body.end()),
            body);
}

TEST(SzContainer, TrustedParseScopeSkipsOnlyTheCrc) {
  std::vector<std::uint8_t> body{9, 8, 7, 6};
  auto framed = frame_container(CodecId::kSz, body);
  // Corrupt only the CRC word (the last 4 bytes): the frame structure
  // stays valid, so the difference between the two paths is exactly the
  // checksum walk.
  framed[framed.size() - 1] ^= 0xFF;

  EXPECT_FALSE(container_parse_trusted());
  EXPECT_THROW(parse_container(framed), CorruptStream);
  {
    const TrustedParseScope trusted;
    EXPECT_TRUE(container_parse_trusted());
    const auto parsed = parse_container(framed);
    EXPECT_EQ(std::vector<std::uint8_t>(parsed.body.begin(),
                                        parsed.body.end()),
              body);
    {
      const TrustedParseScope nested;  // scopes nest
      EXPECT_TRUE(container_parse_trusted());
    }
    EXPECT_TRUE(container_parse_trusted());

    // Structural violations are still rejected under trust.
    auto bad_magic = framed;
    bad_magic[0] = 'Y';
    EXPECT_THROW(parse_container(bad_magic), CorruptStream);
    auto truncated = framed;
    truncated.resize(truncated.size() - 6);
    EXPECT_THROW(parse_container(truncated), CorruptStream);
  }
  EXPECT_FALSE(container_parse_trusted());
  EXPECT_THROW(parse_container(framed), CorruptStream);
}

TEST(SzContainer, EmptyOrShortStreamRejected) {
  EXPECT_THROW(parse_container({}), CorruptStream);
  std::vector<std::uint8_t> tiny{'X', 'F', 'C', '1'};
  EXPECT_THROW(parse_container(tiny), CorruptStream);
}

TEST(Sz, EmptyFieldRejected) {
  Field empty;
  EXPECT_THROW(sz_compress(empty, SzOptions{}), InvalidArgument);
}

TEST(Sz, RegressionModeWinsOnPiecewisePlanarData) {
  // Piecewise-planar with gradients: regression blocks should engage and
  // not hurt (usually help) vs pure Lorenzo.
  F32Array a(Shape{96, 96});
  for (std::size_t i = 0; i < 96; ++i)
    for (std::size_t j = 0; j < 96; ++j)
      a(i, j) = static_cast<float>((i / 24) * 50 + 0.8 * i + 1.7 * j);
  const Field field("planar", std::move(a));

  SzOptions lorenzo;
  lorenzo.predictor = SzPredictor::kLorenzo1;
  SzOptions mixed;
  mixed.predictor = SzPredictor::kLorenzoRegression;
  SzStats sl, sm;
  sz_compress(field, lorenzo, &sl);
  const auto stream = sz_compress(field, mixed, &sm);

  const Field out = sz_decompress(stream);
  const double abs_eb =
      mixed.eb.absolute_for(field.value_range());
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, field));
}

}  // namespace
}  // namespace xfc
