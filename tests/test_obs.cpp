// Observability tests: the striped metrics core (concurrent counter /
// histogram mutation, bucket edges, quantile interpolation, Prometheus
// exposition), the registry's duplicate-name guard, the span tree + its
// Server-Timing / JSON renderings, the JSON writer's two layouts, the
// access-log line format, and the serving endpoints (`/metrics`,
// `/stats?format=v2`, `?trace=1`, Server-Timing over real loopback HTTP).
//
// The concurrency tests double as the TSan proof for the lock-free hot
// path: 8 threads hammering one counter/histogram must be clean and exact.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "obs/access_log.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/http.hpp"
#include "server/service.hpp"

#ifndef XFC_NO_METRICS

namespace xfc {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JsonWriter;
using obs::Registry;
using obs::SpanScope;
using obs::Trace;
using obs::TraceActivation;

// -- metrics core ------------------------------------------------------------

TEST(Metrics, CounterConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, HistogramBucketIndexEdges) {
  const Histogram h({1.0, 2.0, 5.0});
  // Upper edges are inclusive (Prometheus `le` semantics).
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0000001), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(5.0), 2u);
  EXPECT_EQ(h.bucket_index(5.1), 3u);  // +Inf tail
}

TEST(Metrics, HistogramConcurrentObservesAreExact) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(3.0);
    });
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.counts[1], snap.count);  // all land in (1, 10]
  EXPECT_NEAR(snap.sum, 3.0 * kThreads * kPerThread, 1e-6 * snap.count);
}

TEST(Metrics, HistogramQuantileInterpolates) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const auto snap = h.snapshot();
  // All mass in (10, 20]: the median interpolates to the bucket midpoint.
  EXPECT_NEAR(obs::histogram_quantile(snap, 0.5), 15.0, 1e-9);
  EXPECT_NEAR(obs::histogram_quantile(snap, 1.0), 20.0, 1e-9);

  Histogram tail({10.0, 20.0, 30.0});
  tail.observe(1e6);  // +Inf bucket clamps to the highest finite edge
  EXPECT_NEAR(obs::histogram_quantile(tail.snapshot(), 0.99), 30.0, 1e-9);

  const Histogram empty({1.0});
  EXPECT_EQ(obs::histogram_quantile(empty.snapshot(), 0.5), 0.0);
}

TEST(Metrics, LogBucketsAreAscendingAndCoverHi) {
  const std::vector<double> edges = obs::log_buckets(10.0, 1000.0, 2.0);
  ASSERT_GE(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges.front(), 10.0);
  EXPECT_GE(edges.back(), 1000.0);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_GT(edges[i], edges[i - 1]);
  EXPECT_THROW(obs::log_buckets(0.0, 10.0, 2.0), InvalidArgument);
}

TEST(Metrics, RegistryRejectsDuplicateNames) {
  Registry r;
  r.counter("t_total", "a counter");
  EXPECT_THROW(r.counter("t_total", "again"), InvalidArgument);
  EXPECT_THROW(r.gauge("t_total", "as a gauge"), InvalidArgument);
  EXPECT_THROW(r.histogram("t_total", "as a histogram"), InvalidArgument);
  EXPECT_THROW(r.counter_fn("t_total", "as a callback", [] { return 0.0; }),
               InvalidArgument);
}

TEST(Metrics, ExpositionGolden) {
  Registry r;
  Counter& c = r.counter("t_total", "c");
  Gauge& g = r.gauge("t_gauge", "g");
  Histogram& h = r.histogram("t_us", "h", {1.0, 2.0});
  c.add(3);
  g.set(2.5);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);
  EXPECT_EQ(r.exposition(),
            "# HELP t_gauge g\n"
            "# TYPE t_gauge gauge\n"
            "t_gauge 2.5\n"
            "# HELP t_total c\n"
            "# TYPE t_total counter\n"
            "t_total 3\n"
            "# HELP t_us h\n"
            "# TYPE t_us histogram\n"
            "t_us_bucket{le=\"1\"} 1\n"
            "t_us_bucket{le=\"2\"} 2\n"
            "t_us_bucket{le=\"+Inf\"} 3\n"
            "t_us_sum 101\n"
            "t_us_count 3\n");
}

TEST(Metrics, SetEnabledGatesMutation) {
  Counter c;
  obs::set_enabled(false);
  c.add(7);
  obs::set_enabled(true);  // restore for every other test
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

// -- tracing -----------------------------------------------------------------

TEST(TraceTest, SpanTreeRecordsNestingAndParents) {
  Trace trace;
  {
    const TraceActivation activate(&trace);
    ASSERT_EQ(Trace::current(), &trace);
    const SpanScope root("request");
    {
      const SpanScope child("tiles");
      const SpanScope grand("decode");
      (void)grand;
    }
    const SpanScope sibling("encode");
    (void)sibling;
  }
  EXPECT_EQ(Trace::current(), nullptr);
  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_STREQ(trace.spans()[0].name, "request");
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].parent, 0);  // tiles under request
  EXPECT_EQ(trace.spans()[2].parent, 1);  // decode under tiles
  EXPECT_EQ(trace.spans()[3].parent, 0);  // encode under request
  for (const obs::Span& s : trace.spans())
    EXPECT_NE(s.dur_ns, obs::Span::kOpen);

  // Server-Timing reports the depth-1 stages, in first-seen order.
  const std::string st = trace.server_timing();
  EXPECT_NE(st.find("tiles;dur="), std::string::npos);
  EXPECT_NE(st.find("encode;dur="), std::string::npos);
  EXPECT_LT(st.find("tiles"), st.find("encode"));
  EXPECT_EQ(st.find("decode"), std::string::npos);  // depth 2: not a stage

  const std::string json = trace.spans_json();
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
}

TEST(TraceTest, SpanScopeFeedsHistogramWithoutActiveTrace) {
  ASSERT_EQ(Trace::current(), nullptr);
  Histogram h({1e12});
  {
    const SpanScope s("orphan", &h);
    (void)s;
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceTest, SpanBufferCapsAndCountsDrops) {
  Trace trace;
  {
    const TraceActivation activate(&trace);
    for (std::size_t i = 0; i < Trace::kMaxSpans + 40; ++i) {
      const SpanScope s("s");
      (void)s;
    }
  }
  EXPECT_EQ(trace.spans().size(), Trace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 40u);
}

// -- JSON writer -------------------------------------------------------------

TEST(JsonWriterTest, CompactLayout) {
  JsonWriter w;
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.begin_object("b");
  w.field("c", std::string("x\"y"));
  w.end_object();
  w.begin_array("arr");
  w.element(std::uint64_t{1});
  w.element(2.5);
  w.end_array();
  w.field("ok", true);
  w.end_object();
  EXPECT_EQ(w.take(), "{\"a\":1,\"b\":{\"c\":\"x\\\"y\"},"
                      "\"arr\":[1,2.5],\"ok\":true}");
}

TEST(JsonWriterTest, PrettyLayoutMatchesLegacyStatsShape) {
  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.field("requests", std::uint64_t{3});
  w.begin_object("cache");
  w.field("hits", std::uint64_t{1});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\n"
            "  \"requests\": 3,\n"
            "  \"cache\": {\n"
            "    \"hits\": 1\n"
            "  }\n"
            "}\n");
}

// -- access log --------------------------------------------------------------

TEST(AccessLogTest, FormatsEntryCompactly) {
  obs::AccessEntry e;
  e.unix_ms = 1700000000123;
  e.method = "GET";
  e.path = "/field/f/region";
  e.query = "lo=0,0&hi=8,8";
  e.status = 200;
  e.bytes = 256;
  e.wall_us = 1234;
  e.cache_hits = 4;
  e.cache_misses = 0;
  e.bad_tiles = "3,17";
  e.slow = true;
  EXPECT_EQ(obs::format_access_entry(e),
            "{\"ts_ms\":1700000000123,\"method\":\"GET\","
            "\"path\":\"/field/f/region\",\"query\":\"lo=0,0&hi=8,8\","
            "\"status\":200,\"bytes\":256,\"wall_us\":1234,"
            "\"cache_hits\":4,\"cache_misses\":0,\"bad_tiles\":\"3,17\","
            "\"slow\":true}");

  // Optional fields vanish rather than emitting zero/empty values.
  obs::AccessEntry quick;
  quick.method = "GET";
  quick.path = "/healthz";
  quick.status = 200;
  const std::string line = obs::format_access_entry(quick);
  EXPECT_EQ(line.find("query"), std::string::npos);
  EXPECT_EQ(line.find("bad_tiles"), std::string::npos);
  EXPECT_EQ(line.find("slow"), std::string::npos);
  EXPECT_EQ(line.find("spans"), std::string::npos);
}

TEST(AccessLogTest, WritesOneLinePerEntry) {
  const std::string path = testing::TempDir() + "xfc_obs_access_test.log";
  std::remove(path.c_str());
  {
    const auto log = obs::AccessLog::open(path);
    log->write_line("{\"a\":1}");
    log->write_line("{\"b\":2}");
    EXPECT_EQ(log->lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string l1, l2;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_EQ(l1, "{\"a\":1}");
  EXPECT_EQ(l2, "{\"b\":2}");
  std::remove(path.c_str());
  EXPECT_THROW(obs::AccessLog::open("/nonexistent-dir/x/y.log"), IoError);
}

// -- serving endpoints over real HTTP ----------------------------------------

std::shared_ptr<const ArchiveReader> make_archive(
    std::vector<std::uint8_t>& storage) {
  Rng rng(7);
  F32Array a(Shape{70, 90});
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % 90) / 7.0;
    const double y = static_cast<double>(i / 90) / 11.0;
    a[i] = static_cast<float>(std::sin(x) * std::cos(y) * 20.0 +
                              rng.normal(0, 0.1));
  }
  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{32, 32};
  writer.add_field(Field("f", std::move(a)), opts);
  writer.finish();
  storage = sink.take();
  return std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage));
}

TEST(ObsHttp, ServerTimingCarriesPipelineStages) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpServer http(server::HttpConfig{}, [&](const auto& r) {
    return service.handle(r);
  });
  http.start();
  server::HttpClient client("127.0.0.1", http.port());

  const auto resp = client.get("/field/f/region?lo=0,0&hi=64,64");
  ASSERT_EQ(resp.status, 200);
  const std::string* st = resp.header("Server-Timing");
  ASSERT_NE(st, nullptr);
  // At least the etag / tiles / encode stages of the region pipeline.
  std::size_t stages = 1;
  for (const char c : *st) stages += c == ',' ? 1 : 0;
  EXPECT_GE(stages, 3u);
  EXPECT_NE(st->find("etag;dur="), std::string::npos);
  EXPECT_NE(st->find("tiles;dur="), std::string::npos);
  EXPECT_NE(st->find("encode;dur="), std::string::npos);
  http.stop();
}

TEST(ObsHttp, MetricsEndpointExposesCountersAndHistograms) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpServer http(server::HttpConfig{}, [&](const auto& r) {
    return service.handle(r);
  });
  http.start();
  server::HttpClient client("127.0.0.1", http.port());
  ASSERT_EQ(client.get("/field/f/region?lo=0,0&hi=64,64").status, 200);

  const auto resp = client.get("/metrics");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
  const std::string& body = resp.body;
  // Service-registry counters carry real traffic...
  EXPECT_NE(body.find("# TYPE xfs_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE xfs_cache_misses_total counter"),
            std::string::npos);
  // ...and the process registry contributes the stage histograms.
  std::size_t histograms = 0;
  for (std::size_t pos = 0;
       (pos = body.find(" histogram\n", pos)) != std::string::npos; ++pos)
    ++histograms;
  EXPECT_GE(histograms, 4u);
  EXPECT_NE(body.find("xfc_tile_decode_us_bucket{le=\"1\"}"),
            std::string::npos);
  EXPECT_NE(body.find("xfc_tile_decode_us_count"), std::string::npos);
  http.stop();
}

TEST(ObsHttp, StatsV2AndTraceDebugView) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));

  const auto v2 = [&] {
    server::HttpRequest req;
    req.method = "GET";
    req.path = "/stats";
    req.query = "format=v2";
    return service.handle(req);
  }();
  ASSERT_EQ(v2.status, 200);
  EXPECT_NE(v2.body.find("\"service\":"), std::string::npos);
  EXPECT_NE(v2.body.find("\"process\":"), std::string::npos);
  EXPECT_NE(v2.body.find("\"xfs_requests_total\""), std::string::npos);

  server::HttpRequest req;
  req.method = "GET";
  req.path = "/field/f/region";
  req.query = "lo=0,0&hi=64,64&trace=1";
  const auto traced = service.handle(req);
  ASSERT_EQ(traced.status, 200);
  EXPECT_NE(traced.body.find("\"field\":\"f\""), std::string::npos);
  EXPECT_NE(traced.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(traced.body.find("\"name\":\"tiles\""), std::string::npos);
  EXPECT_NE(traced.body.find("\"cache_hits\":"), std::string::npos);
}

}  // namespace
}  // namespace xfc

#else  // XFC_NO_METRICS

// The compile-out build keeps the endpoints but freezes every value; the
// behavioral suite above would legitimately observe zeros, so it only runs
// in instrumented builds.
TEST(Metrics, CompiledOut) { EXPECT_FALSE(xfc::obs::enabled()); }

#endif  // XFC_NO_METRICS
