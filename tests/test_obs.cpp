// Observability tests: the striped metrics core (concurrent counter /
// histogram mutation, bucket edges, quantile interpolation, Prometheus
// exposition), the registry's duplicate-name guard, the span tree + its
// Server-Timing / JSON renderings, the JSON writer's two layouts, the
// access-log line format + SIGHUP-style rotation, the serving endpoints
// (`/metrics`, `/stats?format=v2`, `?trace=1`, Server-Timing over real
// loopback HTTP, `/debug/cache`, `/debug/prof`), the sampling CPU
// profiler, the tile-access heatmap, and the bench-regression gate logic.
//
// The concurrency tests double as the TSan proof for the lock-free hot
// path: 8 threads hammering one counter/histogram must be clean and exact.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "bench_compare.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "obs/access_log.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"
#include "server/http.hpp"
#include "server/service.hpp"
#include "server/tile_cache.hpp"

#ifndef XFC_NO_METRICS

namespace xfc {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::JsonWriter;
using obs::Registry;
using obs::SpanScope;
using obs::Trace;
using obs::TraceActivation;

// -- metrics core ------------------------------------------------------------

TEST(Metrics, CounterConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, HistogramBucketIndexEdges) {
  const Histogram h({1.0, 2.0, 5.0});
  // Upper edges are inclusive (Prometheus `le` semantics).
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0000001), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(5.0), 2u);
  EXPECT_EQ(h.bucket_index(5.1), 3u);  // +Inf tail
}

TEST(Metrics, HistogramConcurrentObservesAreExact) {
  Histogram h({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(3.0);
    });
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snap.counts[1], snap.count);  // all land in (1, 10]
  EXPECT_NEAR(snap.sum, 3.0 * kThreads * kPerThread, 1e-6 * snap.count);
}

TEST(Metrics, HistogramQuantileInterpolates) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const auto snap = h.snapshot();
  // All mass in (10, 20]: the median interpolates to the bucket midpoint.
  EXPECT_NEAR(obs::histogram_quantile(snap, 0.5), 15.0, 1e-9);
  EXPECT_NEAR(obs::histogram_quantile(snap, 1.0), 20.0, 1e-9);

  Histogram tail({10.0, 20.0, 30.0});
  tail.observe(1e6);  // +Inf bucket clamps to the highest finite edge
  EXPECT_NEAR(obs::histogram_quantile(tail.snapshot(), 0.99), 30.0, 1e-9);

  const Histogram empty({1.0});
  EXPECT_EQ(obs::histogram_quantile(empty.snapshot(), 0.5), 0.0);
}

TEST(Metrics, LogBucketsAreAscendingAndCoverHi) {
  const std::vector<double> edges = obs::log_buckets(10.0, 1000.0, 2.0);
  ASSERT_GE(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges.front(), 10.0);
  EXPECT_GE(edges.back(), 1000.0);
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_GT(edges[i], edges[i - 1]);
  EXPECT_THROW(obs::log_buckets(0.0, 10.0, 2.0), InvalidArgument);
}

TEST(Metrics, RegistryRejectsDuplicateNames) {
  Registry r;
  r.counter("t_total", "a counter");
  EXPECT_THROW(r.counter("t_total", "again"), InvalidArgument);
  EXPECT_THROW(r.gauge("t_total", "as a gauge"), InvalidArgument);
  EXPECT_THROW(r.histogram("t_total", "as a histogram"), InvalidArgument);
  EXPECT_THROW(r.counter_fn("t_total", "as a callback", [] { return 0.0; }),
               InvalidArgument);
}

TEST(Metrics, ExpositionGolden) {
  Registry r;
  Counter& c = r.counter("t_total", "c");
  Gauge& g = r.gauge("t_gauge", "g");
  Histogram& h = r.histogram("t_us", "h", {1.0, 2.0});
  c.add(3);
  g.set(2.5);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(99.0);
  EXPECT_EQ(r.exposition(),
            "# HELP t_gauge g\n"
            "# TYPE t_gauge gauge\n"
            "t_gauge 2.5\n"
            "# HELP t_total c\n"
            "# TYPE t_total counter\n"
            "t_total 3\n"
            "# HELP t_us h\n"
            "# TYPE t_us histogram\n"
            "t_us_bucket{le=\"1\"} 1\n"
            "t_us_bucket{le=\"2\"} 2\n"
            "t_us_bucket{le=\"+Inf\"} 3\n"
            "t_us_sum 101\n"
            "t_us_count 3\n");
}

TEST(Metrics, SetEnabledGatesMutation) {
  Counter c;
  obs::set_enabled(false);
  c.add(7);
  obs::set_enabled(true);  // restore for every other test
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

// -- tracing -----------------------------------------------------------------

TEST(TraceTest, SpanTreeRecordsNestingAndParents) {
  Trace trace;
  {
    const TraceActivation activate(&trace);
    ASSERT_EQ(Trace::current(), &trace);
    const SpanScope root("request");
    {
      const SpanScope child("tiles");
      const SpanScope grand("decode");
      (void)grand;
    }
    const SpanScope sibling("encode");
    (void)sibling;
  }
  EXPECT_EQ(Trace::current(), nullptr);
  ASSERT_EQ(trace.spans().size(), 4u);
  EXPECT_STREQ(trace.spans()[0].name, "request");
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].parent, 0);  // tiles under request
  EXPECT_EQ(trace.spans()[2].parent, 1);  // decode under tiles
  EXPECT_EQ(trace.spans()[3].parent, 0);  // encode under request
  for (const obs::Span& s : trace.spans())
    EXPECT_NE(s.dur_ns, obs::Span::kOpen);

  // Server-Timing reports the depth-1 stages, in first-seen order.
  const std::string st = trace.server_timing();
  EXPECT_NE(st.find("tiles;dur="), std::string::npos);
  EXPECT_NE(st.find("encode;dur="), std::string::npos);
  EXPECT_LT(st.find("tiles"), st.find("encode"));
  EXPECT_EQ(st.find("decode"), std::string::npos);  // depth 2: not a stage

  const std::string json = trace.spans_json();
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":1"), std::string::npos);
}

TEST(TraceTest, SpanScopeFeedsHistogramWithoutActiveTrace) {
  ASSERT_EQ(Trace::current(), nullptr);
  Histogram h({1e12});
  {
    const SpanScope s("orphan", &h);
    (void)s;
  }
  EXPECT_EQ(h.snapshot().count, 1u);
}

TEST(TraceTest, SpanBufferCapsAndCountsDrops) {
  Trace trace;
  {
    const TraceActivation activate(&trace);
    for (std::size_t i = 0; i < Trace::kMaxSpans + 40; ++i) {
      const SpanScope s("s");
      (void)s;
    }
  }
  EXPECT_EQ(trace.spans().size(), Trace::kMaxSpans);
  EXPECT_EQ(trace.dropped_spans(), 40u);
}

// -- JSON writer -------------------------------------------------------------

TEST(JsonWriterTest, CompactLayout) {
  JsonWriter w;
  w.begin_object();
  w.field("a", std::uint64_t{1});
  w.begin_object("b");
  w.field("c", std::string("x\"y"));
  w.end_object();
  w.begin_array("arr");
  w.element(std::uint64_t{1});
  w.element(2.5);
  w.end_array();
  w.field("ok", true);
  w.end_object();
  EXPECT_EQ(w.take(), "{\"a\":1,\"b\":{\"c\":\"x\\\"y\"},"
                      "\"arr\":[1,2.5],\"ok\":true}");
}

TEST(JsonWriterTest, PrettyLayoutMatchesLegacyStatsShape) {
  JsonWriter w(/*pretty=*/true);
  w.begin_object();
  w.field("requests", std::uint64_t{3});
  w.begin_object("cache");
  w.field("hits", std::uint64_t{1});
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.take(),
            "{\n"
            "  \"requests\": 3,\n"
            "  \"cache\": {\n"
            "    \"hits\": 1\n"
            "  }\n"
            "}\n");
}

// -- access log --------------------------------------------------------------

TEST(AccessLogTest, FormatsEntryCompactly) {
  obs::AccessEntry e;
  e.unix_ms = 1700000000123;
  e.method = "GET";
  e.path = "/field/f/region";
  e.query = "lo=0,0&hi=8,8";
  e.status = 200;
  e.bytes = 256;
  e.wall_us = 1234;
  e.cache_hits = 4;
  e.cache_misses = 0;
  e.bad_tiles = "3,17";
  e.slow = true;
  EXPECT_EQ(obs::format_access_entry(e),
            "{\"ts_ms\":1700000000123,\"method\":\"GET\","
            "\"path\":\"/field/f/region\",\"query\":\"lo=0,0&hi=8,8\","
            "\"status\":200,\"bytes\":256,\"wall_us\":1234,"
            "\"cache_hits\":4,\"cache_misses\":0,\"bad_tiles\":\"3,17\","
            "\"slow\":true}");

  // Optional fields vanish rather than emitting zero/empty values.
  obs::AccessEntry quick;
  quick.method = "GET";
  quick.path = "/healthz";
  quick.status = 200;
  const std::string line = obs::format_access_entry(quick);
  EXPECT_EQ(line.find("query"), std::string::npos);
  EXPECT_EQ(line.find("bad_tiles"), std::string::npos);
  EXPECT_EQ(line.find("slow"), std::string::npos);
  EXPECT_EQ(line.find("spans"), std::string::npos);
}

TEST(AccessLogTest, WritesOneLinePerEntry) {
  const std::string path = testing::TempDir() + "xfc_obs_access_test.log";
  std::remove(path.c_str());
  {
    const auto log = obs::AccessLog::open(path);
    log->write_line("{\"a\":1}");
    log->write_line("{\"b\":2}");
    EXPECT_EQ(log->lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string l1, l2;
  ASSERT_TRUE(std::getline(in, l1));
  ASSERT_TRUE(std::getline(in, l2));
  EXPECT_EQ(l1, "{\"a\":1}");
  EXPECT_EQ(l2, "{\"b\":2}");
  std::remove(path.c_str());
  EXPECT_THROW(obs::AccessLog::open("/nonexistent-dir/x/y.log"), IoError);
}

// -- serving endpoints over real HTTP ----------------------------------------

std::shared_ptr<const ArchiveReader> make_archive(
    std::vector<std::uint8_t>& storage) {
  Rng rng(7);
  F32Array a(Shape{70, 90});
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % 90) / 7.0;
    const double y = static_cast<double>(i / 90) / 11.0;
    a[i] = static_cast<float>(std::sin(x) * std::cos(y) * 20.0 +
                              rng.normal(0, 0.1));
  }
  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{32, 32};
  writer.add_field(Field("f", std::move(a)), opts);
  writer.finish();
  storage = sink.take();
  return std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage));
}

TEST(ObsHttp, ServerTimingCarriesPipelineStages) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpServer http(server::HttpConfig{}, [&](const auto& r) {
    return service.handle(r);
  });
  http.start();
  server::HttpClient client("127.0.0.1", http.port());

  const auto resp = client.get("/field/f/region?lo=0,0&hi=64,64");
  ASSERT_EQ(resp.status, 200);
  const std::string* st = resp.header("Server-Timing");
  ASSERT_NE(st, nullptr);
  // At least the etag / tiles / encode stages of the region pipeline.
  std::size_t stages = 1;
  for (const char c : *st) stages += c == ',' ? 1 : 0;
  EXPECT_GE(stages, 3u);
  EXPECT_NE(st->find("etag;dur="), std::string::npos);
  EXPECT_NE(st->find("tiles;dur="), std::string::npos);
  EXPECT_NE(st->find("encode;dur="), std::string::npos);
  http.stop();
}

TEST(ObsHttp, MetricsEndpointExposesCountersAndHistograms) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpServer http(server::HttpConfig{}, [&](const auto& r) {
    return service.handle(r);
  });
  http.start();
  server::HttpClient client("127.0.0.1", http.port());
  ASSERT_EQ(client.get("/field/f/region?lo=0,0&hi=64,64").status, 200);

  const auto resp = client.get("/metrics");
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
  const std::string& body = resp.body;
  // Service-registry counters carry real traffic...
  EXPECT_NE(body.find("# TYPE xfs_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE xfs_cache_misses_total counter"),
            std::string::npos);
  // ...and the process registry contributes the stage histograms.
  std::size_t histograms = 0;
  for (std::size_t pos = 0;
       (pos = body.find(" histogram\n", pos)) != std::string::npos; ++pos)
    ++histograms;
  EXPECT_GE(histograms, 4u);
  EXPECT_NE(body.find("xfc_tile_decode_us_bucket{le=\"1\"}"),
            std::string::npos);
  EXPECT_NE(body.find("xfc_tile_decode_us_count"), std::string::npos);
  http.stop();
}

TEST(ObsHttp, StatsV2AndTraceDebugView) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));

  const auto v2 = [&] {
    server::HttpRequest req;
    req.method = "GET";
    req.path = "/stats";
    req.query = "format=v2";
    return service.handle(req);
  }();
  ASSERT_EQ(v2.status, 200);
  EXPECT_NE(v2.body.find("\"service\":"), std::string::npos);
  EXPECT_NE(v2.body.find("\"process\":"), std::string::npos);
  EXPECT_NE(v2.body.find("\"xfs_requests_total\""), std::string::npos);

  server::HttpRequest req;
  req.method = "GET";
  req.path = "/field/f/region";
  req.query = "lo=0,0&hi=64,64&trace=1";
  const auto traced = service.handle(req);
  ASSERT_EQ(traced.status, 200);
  EXPECT_NE(traced.body.find("\"field\":\"f\""), std::string::npos);
  EXPECT_NE(traced.body.find("\"spans\":["), std::string::npos);
  EXPECT_NE(traced.body.find("\"name\":\"tiles\""), std::string::npos);
  EXPECT_NE(traced.body.find("\"cache_hits\":"), std::string::npos);
}

// -- histogram_quantile edge cases -------------------------------------------

TEST(Metrics, HistogramQuantileEmptyAndSingleBucket) {
  // No observations: 0, not NaN or a crash.
  Histogram::Snapshot empty;
  EXPECT_EQ(obs::histogram_quantile(empty, 0.5), 0.0);

  // count > 0 with no finite bounds used to dereference bounds.back() on an
  // empty vector — pinned to 0 (there is no finite edge to interpolate).
  Histogram::Snapshot inf_only;
  inf_only.counts = {7};
  inf_only.count = 7;
  EXPECT_EQ(obs::histogram_quantile(inf_only, 0.99), 0.0);

  // Single finite bucket: interpolation stays inside [0, edge], and the
  // +Inf tail clamps to the finite edge.
  Histogram one({10.0});
  one.observe(5.0);
  one.observe(5.0);
  const auto snap = one.snapshot();
  EXPECT_GT(obs::histogram_quantile(snap, 0.5), 0.0);
  EXPECT_LE(obs::histogram_quantile(snap, 1.0), 10.0);
  one.observe(50.0);
  EXPECT_EQ(obs::histogram_quantile(one.snapshot(), 0.999), 10.0);
}

// -- process gauges ----------------------------------------------------------

TEST(Metrics, ProcessGaugesReadFromProcAtScrapeTime) {
  obs::ensure_process_metrics();
  std::vector<obs::MetricValue> values;
  std::vector<obs::HistogramValue> histograms;
  obs::registry().snapshot(values, histograms);
  double rss = -1.0, fds = -1.0, threads = -1.0, uptime = -1.0;
  for (const auto& v : values) {
    if (v.name == "xfc_process_resident_bytes") rss = v.value;
    if (v.name == "xfc_process_open_fds") fds = v.value;
    if (v.name == "xfc_process_threads") threads = v.value;
    if (v.name == "xfc_process_uptime_seconds") uptime = v.value;
  }
  // All four registered...
  ASSERT_GE(rss, 0.0);
  ASSERT_GE(fds, 0.0);
  ASSERT_GE(threads, 0.0);
  ASSERT_GE(uptime, 0.0);
#if defined(__linux__)
  // ...and carrying plausible live values where /proc exists.
  EXPECT_GT(rss, 1.0e6);     // a running gtest binary is >1 MB resident
  EXPECT_GE(fds, 3.0);       // stdin/stdout/stderr at minimum
  EXPECT_GE(threads, 1.0);
#endif
}

// -- sampling CPU profiler ---------------------------------------------------

/// Spins real CPU: ITIMER_PROF counts process CPU time, so sleeping would
/// produce zero samples no matter how long the wall window.
void burn_cpu_ms(double ms) {
  const std::clock_t start = std::clock();
  volatile double acc = 0.0;
  while ((static_cast<double>(std::clock() - start) * 1000.0 /
          CLOCKS_PER_SEC) < ms)
    for (int i = 0; i < 1000; ++i) acc = acc + std::sin(i);
}

TEST(Profiler, ArmBurnDisarmProducesFoldedStacks) {
  ASSERT_FALSE(obs::profiler_armed());
  obs::ProfilerOptions opt;
  opt.hz = 499.0;
  ASSERT_TRUE(obs::profiler_arm(opt));
  EXPECT_TRUE(obs::profiler_armed());
  EXPECT_FALSE(obs::profiler_arm(opt));  // second arm refused, first intact
  burn_cpu_ms(300.0);
  const obs::ProfileReport rep = obs::profiler_disarm();
  EXPECT_FALSE(obs::profiler_armed());
  EXPECT_GT(rep.samples, 0u);
  EXPECT_GE(rep.threads, 1u);
  ASSERT_FALSE(rep.folded.empty());
  // Folded format: every line is "frame[;frame...] count\n".
  EXPECT_NE(rep.folded.find(' '), std::string::npos);
  EXPECT_EQ(rep.folded.back(), '\n');

  // Disarming an unarmed profiler is an empty no-op, not an error.
  const obs::ProfileReport idle = obs::profiler_disarm();
  EXPECT_EQ(idle.samples, 0u);
  EXPECT_TRUE(idle.folded.empty());
}

// -- tile-access heatmap -----------------------------------------------------

TEST(TileCacheHeat, MirrorsStatsAndDecaysAcrossEpochs) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_archive(storage);  // "f": 70x90, 3x3 tile grid
  server::TileCache cache(server::TileCacheConfig{8u << 20, 2});
  const std::uint64_t id = cache.add_archive(reader);

  // Scripted pattern: tile 0 three times, tile 1 once, tile 4 twice.
  for (int i = 0; i < 3; ++i) (void)cache.get(id, std::size_t{0}, 0);
  (void)cache.get(id, std::size_t{0}, 1);
  (void)cache.get(id, std::size_t{0}, 4);
  (void)cache.get(id, std::size_t{0}, 4);

  const std::vector<server::TileHeat> heat = cache.field_heat(id, 0);
  ASSERT_EQ(heat.size(), 9u);
  EXPECT_EQ(heat[0].misses, 1u);
  EXPECT_EQ(heat[0].hits, 2u);
  EXPECT_EQ(heat[1].misses, 1u);
  EXPECT_EQ(heat[1].hits, 0u);
  EXPECT_EQ(heat[4].misses, 1u);
  EXPECT_EQ(heat[4].hits, 1u);
  EXPECT_EQ(heat[2].hits + heat[2].misses, 0u);  // untouched tile

  // Per-tile totals mirror the cache's own counters exactly.
  const server::TileCacheStats stats = cache.stats();
  std::uint64_t hits = 0, misses = 0;
  for (const auto& t : heat) {
    hits += t.hits;
    misses += t.misses;
  }
  EXPECT_EQ(hits, stats.hits);
  EXPECT_EQ(misses, stats.misses);

  // Shard occupancy snapshots add up to the cache totals.
  std::uint64_t shard_entries = 0, shard_bytes = 0;
  for (std::size_t s = 0; s < cache.shard_count(); ++s) {
    const server::TileShardStats ss = cache.shard_stats(s);
    shard_entries += ss.entries;
    shard_bytes += ss.bytes;
  }
  EXPECT_EQ(shard_entries, stats.entries);
  EXPECT_EQ(shard_bytes, stats.bytes);

  // The popularity score halves per idle epoch, then re-bumps on touch:
  // hot=3 after three same-epoch touches, (3>>1)+1 == 2 one epoch later.
  EXPECT_EQ(heat[0].hot, 3u);
  EXPECT_EQ(heat[0].last_epoch, cache.access_epoch());
  cache.advance_access_epoch();
  (void)cache.get(id, std::size_t{0}, 0);
  EXPECT_EQ(cache.field_heat(id, 0)[0].hot, 2u);

  // Unknown archive/field answer empty, not UB.
  EXPECT_TRUE(cache.field_heat(id + 999, 0).empty());
  EXPECT_TRUE(cache.field_heat(id, 99).empty());
}

// -- /debug/cache + /debug/prof endpoints ------------------------------------

const std::string* find_header(const server::HttpResponse& resp,
                               const std::string& name) {
  for (const auto& [n, v] : resp.headers)
    if (n == name) return &v;
  return nullptr;
}

TEST(ObsHttp, DebugCacheHeatmapAndShardGauges) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpRequest req;
  req.method = "GET";
  req.path = "/field/f/region";
  req.query = "lo=0,0&hi=64,64";  // 4 of the 9 tiles
  ASSERT_EQ(service.handle(req).status, 200);
  ASSERT_EQ(service.handle(req).status, 200);  // warm repeat: 4 hits
  EXPECT_EQ(service.cache().stats().misses, 4u);
  EXPECT_EQ(service.cache().stats().hits, 4u);

  server::HttpRequest dbg;
  dbg.method = "GET";
  dbg.path = "/debug/cache";
  const server::HttpResponse resp = service.handle(dbg);
  ASSERT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"epoch\":"), std::string::npos);
  EXPECT_NE(resp.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(resp.body.find("\"name\":\"f\""), std::string::npos);
  EXPECT_NE(resp.body.find("\"tiles\":9"), std::string::npos);
  // The four touched tiles: ordinals 0,1 (row 0) and 3,4 (row 1) of the
  // 3x3 grid — one miss each, one hit each, untouched tiles zero.
  EXPECT_NE(resp.body.find("\"misses\":[1,1,0,1,1,0,0,0,0]"),
            std::string::npos);
  EXPECT_NE(resp.body.find("\"hits\":[1,1,0,1,1,0,0,0,0]"),
            std::string::npos);

  // /metrics carries the per-shard occupancy gauges.
  server::HttpRequest m;
  m.method = "GET";
  m.path = "/metrics";
  const server::HttpResponse metrics = service.handle(m);
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("xfs_cache_shard0_entries"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("xfs_cache_shard0_oldest_age_seconds"),
            std::string::npos);
}

TEST(ObsHttp, DebugProfProfilesAndRejectsConcurrentArm) {
  std::vector<std::uint8_t> storage;
  server::ArchiveService service(make_archive(storage));
  server::HttpRequest req;
  req.method = "GET";
  req.path = "/debug/prof";
  req.query = "seconds=0.05&hz=199";

  // Keep a core busy so the (CPU-time) PROF timer ticks during the window.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    while (!stop.load(std::memory_order_relaxed)) burn_cpu_ms(10.0);
  });

  const server::HttpResponse resp = service.handle(req);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(find_header(resp, "X-Xfc-Prof-Samples"), nullptr);
  EXPECT_NE(find_header(resp, "X-Xfc-Prof-Dropped"), nullptr);
  EXPECT_NE(find_header(resp, "X-Xfc-Prof-Threads"), nullptr);

  // While someone else holds the profiler, the endpoint answers 409 with a
  // retry hint instead of queueing behind a 30s cap.
  ASSERT_TRUE(obs::profiler_arm({}));
  const server::HttpResponse busy = service.handle(req);
  EXPECT_EQ(busy.status, 409);
  EXPECT_NE(find_header(busy, "Retry-After"), nullptr);
  (void)obs::profiler_disarm();

  stop.store(true, std::memory_order_relaxed);
  burner.join();

  server::HttpRequest bad = req;
  bad.query = "seconds=banana";
  EXPECT_EQ(service.handle(bad).status, 400);
}

// -- trace-drop accounting ---------------------------------------------------

TEST(ObsHttp, TraceDropCounterAccountsTruncatedSpanTrees) {
  // 4x4 tiles over 70x90 -> 414 tile spans, far past Trace::kMaxSpans.
  Rng rng(7);
  F32Array a(Shape{70, 90});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i % 90) / 7.0) *
                              20.0 + rng.normal(0, 0.1));
  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{4, 4};
  writer.add_field(Field("f", std::move(a)), opts);
  writer.finish();
  std::vector<std::uint8_t> storage = sink.take();
  server::ArchiveService service(std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage)));

  const std::uint64_t before = obs::trace_dropped_spans_total().value();
  server::HttpRequest req;
  req.method = "GET";
  req.path = "/field/f/region";
  req.query = "lo=0,0&hi=70,90&trace=1";
  const server::HttpResponse resp = service.handle(req);
  ASSERT_EQ(resp.status, 200);
  const std::size_t pos = resp.body.find("\"dropped_spans\":");
  ASSERT_NE(pos, std::string::npos);
  const long dropped =
      std::strtol(resp.body.c_str() + pos + 16, nullptr, 10);
  EXPECT_GT(dropped, 0);
  EXPECT_EQ(obs::trace_dropped_spans_total().value(),
            before + static_cast<std::uint64_t>(dropped));

  // A trace that fits still reports the field — explicitly zero, so a
  // consumer can tell "complete" from "truncated" without guessing.
  req.query = "lo=0,0&hi=4,4&trace=1";
  const server::HttpResponse small = service.handle(req);
  ASSERT_EQ(small.status, 200);
  EXPECT_NE(small.body.find("\"dropped_spans\":0"), std::string::npos);
}

// -- access-log rotation -----------------------------------------------------

TEST(AccessLogTest, ReopenFollowsLogrotateRename) {
  const std::string path = testing::TempDir() + "xfc_obs_rotate_test.log";
  const std::string rotated = path + ".1";
  std::remove(path.c_str());
  std::remove(rotated.c_str());
  {
    const auto log = obs::AccessLog::open(path);
    log->write_line("{\"seq\":1}");
    // logrotate convention: rename the live file, signal the process.
    ASSERT_EQ(std::rename(path.c_str(), rotated.c_str()), 0);
    ASSERT_TRUE(log->reopen());
    log->write_line("{\"seq\":2}");
    EXPECT_EQ(log->lines_written(), 2u);
  }
  std::ifstream oldf(rotated), newf(path);
  std::string line;
  ASSERT_TRUE(std::getline(oldf, line));
  EXPECT_EQ(line, "{\"seq\":1}");
  EXPECT_FALSE(std::getline(oldf, line));  // old lines stay in the rename
  ASSERT_TRUE(std::getline(newf, line));
  EXPECT_EQ(line, "{\"seq\":2}");
  std::remove(path.c_str());
  std::remove(rotated.c_str());

  // stdout sink: rotation is a successful no-op.
  EXPECT_TRUE(obs::AccessLog::open("-")->reopen());
}

// -- bench-regression gate ---------------------------------------------------

TEST(BenchCompare, ParsesRawAndTrajectoryFormats) {
  const auto raw = bench::parse_bench_records(
      "[{\"name\":\"a\",\"wall_ms\":1.5,\"bytes_per_sec\":10},"
      "{\"name\":\"b\",\"wall_ms\":2.0}]");
  ASSERT_EQ(raw.size(), 2u);
  EXPECT_EQ(raw[0].name, "a");
  EXPECT_DOUBLE_EQ(raw[0].wall_ms, 1.5);
  EXPECT_EQ(raw[1].name, "b");

  // Trajectory format: after_wall_ms is the baseline; objects without a
  // name ("machine") and value-only records are skipped, not mis-parsed.
  const auto traj = bench::parse_bench_records(
      "{\"pr\":9,\"machine\":{\"cpu_count\":1},\"benches\":["
      "{\"name\":\"a\",\"before_wall_ms\":2.0,\"after_wall_ms\":1.0,"
      "\"speedup\":2.0,\"note\":\"x\"}]}");
  ASSERT_EQ(traj.size(), 1u);
  EXPECT_EQ(traj[0].name, "a");
  EXPECT_DOUBLE_EQ(traj[0].wall_ms, 1.0);

  EXPECT_TRUE(bench::parse_bench_records("not json").empty());
}

TEST(BenchCompare, FlagsRegressionsPastThresholdOnly) {
  const std::vector<bench::CompareRecord> base = {
      {"a", 1.0}, {"b", 1.0}, {"tiny", 0.01}};
  const std::vector<bench::CompareRecord> fresh = {
      {"a", 1.3}, {"b", 1.2}, {"tiny", 0.05}, {"new", 9.0}};
  const bench::CompareResult r =
      bench::compare_benches(base, fresh, 1.25, 0.05);
  ASSERT_EQ(r.rows.size(), 2u);  // "tiny" sits under the min-ms noise floor
  EXPECT_EQ(r.fresh_only, 1u);   // "new" has no baseline: informational
  EXPECT_EQ(r.regressions, 1u);  // 1.3x > 1.25 fails, 1.2x passes
  EXPECT_EQ(r.rows[0].name, "a");
  EXPECT_TRUE(r.rows[0].regressed);
  EXPECT_FALSE(r.rows[1].regressed);

  // At threshold 3.0 (the smoke-run gate) the same data is clean.
  EXPECT_EQ(bench::compare_benches(base, fresh, 3.0, 0.05).regressions, 0u);
}

}  // namespace
}  // namespace xfc

#else  // XFC_NO_METRICS

// The compile-out build keeps the endpoints but freezes every value; the
// behavioral suite above would legitimately observe zeros, so it only runs
// in instrumented builds.
TEST(Metrics, CompiledOut) { EXPECT_FALSE(xfc::obs::enabled()); }

#endif  // XFC_NO_METRICS
