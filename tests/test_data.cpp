// Tests for the synthetic dataset generators: determinism, physical sanity,
// cross-field correlation (the property the whole paper rests on), SDR IO.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>

#include "data/dataset.hpp"
#include "data/noise.hpp"
#include "data/sdr.hpp"
#include "io/file.hpp"
#include "metrics/metrics.hpp"

namespace xfc {
namespace {

const Shape kTinyScale{6, 48, 48};
const Shape kTinyCesm{64, 96};
const Shape kTinyHurricane{8, 48, 48};

TEST(Noise, DeterministicAndSmooth) {
  Rng r1(5), r2(5);
  const auto a = value_noise_2d(32, 32, NoiseSpec{}, r1);
  const auto b = value_noise_2d(32, 32, NoiseSpec{}, r2);
  EXPECT_EQ(a.vec(), b.vec());

  // Smoothness: neighbouring values are much closer than the global range.
  float max_step = 0.0f, range_lo = a[0], range_hi = a[0];
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j + 1 < 32; ++j) {
      max_step = std::max(max_step, std::abs(a(i, j + 1) - a(i, j)));
      range_lo = std::min(range_lo, a(i, j));
      range_hi = std::max(range_hi, a(i, j));
    }
  EXPECT_LT(max_step, (range_hi - range_lo) * 0.5f);
}

TEST(Noise, GradientOfLinearRamp) {
  F32Array ramp(Shape{8, 8});
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      ramp(i, j) = static_cast<float>(3.0 * i - 2.0 * j);
  const auto gi = central_gradient(ramp, 0);
  const auto gj = central_gradient(ramp, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(gi[i], 3.0f, 1e-5);
    EXPECT_NEAR(gj[i], -2.0f, 1e-5);
  }
}

TEST(Generators, DeterministicAcrossCalls) {
  const auto a = make_scale_like({kTinyScale, 99});
  const auto b = make_scale_like({kTinyScale, 99});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].array().vec(), b[i].array().vec()) << a[i].name();
}

TEST(Generators, SeedChangesData) {
  const auto a = make_scale_like({kTinyScale, 1});
  const auto b = make_scale_like({kTinyScale, 2});
  EXPECT_NE(a[0].array().vec(), b[0].array().vec());
}

TEST(ScaleLike, FieldInventoryAndShapes) {
  const auto fields = make_scale_like({kTinyScale, 3});
  ASSERT_EQ(fields.size(), 7u);
  const char* names[] = {"T", "QV", "PRES", "RH", "U", "V", "W"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(fields[i].name(), names[i]);
    EXPECT_EQ(fields[i].shape(), kTinyScale);
  }
}

TEST(ScaleLike, PhysicalRanges) {
  const auto fields = make_scale_like({kTinyScale, 4});
  auto get = [&](const char* n) -> const Field& {
    for (const auto& f : fields)
      if (f.name() == n) return f;
    throw std::runtime_error("missing field");
  };
  // RH is a percentage.
  auto [rh_lo, rh_hi] = get("RH").min_max();
  EXPECT_GT(rh_lo, -10.0f);
  EXPECT_LT(rh_hi, 115.0f);
  // Temperature: plausible atmosphere kelvins.
  auto [t_lo, t_hi] = get("T").min_max();
  EXPECT_GT(t_lo, 150.0f);
  EXPECT_LT(t_hi, 340.0f);
  // Pressure positive, below ~1.1 bar.
  auto [p_lo, p_hi] = get("PRES").min_max();
  EXPECT_GT(p_lo, 1000.0f);
  EXPECT_LT(p_hi, 115000.0f);
  // QV nonnegative (mixing ratio).
  EXPECT_GE(get("QV").min_max().first, 0.0f);
}

TEST(ScaleLike, CrossFieldCorrelationExists) {
  // The paper's premise: anchors carry information about the target.
  const auto fields = make_scale_like({kTinyScale, 5});
  const Field* rh = nullptr;
  const Field* qv = nullptr;
  for (const auto& f : fields) {
    if (f.name() == "RH") rh = &f;
    if (f.name() == "QV") qv = &f;
  }
  ASSERT_TRUE(rh && qv);
  EXPECT_GT(std::abs(pearson(rh->array().span(), qv->array().span())), 0.3);
}

TEST(CesmLike, FieldInventoryAndIdentities) {
  const auto fields = make_cesm_like({kTinyCesm, 6});
  ASSERT_EQ(fields.size(), 9u);
  auto get = [&](const char* n) -> const Field& {
    for (const auto& f : fields)
      if (f.name() == n) return f;
    throw std::runtime_error("missing field");
  };

  // Cloud fractions in [0, 1] (CLDTOT has small observation noise).
  for (const char* n : {"CLDLOW", "CLDMED", "CLDHGH"}) {
    auto [lo, hi] = get(n).min_max();
    EXPECT_GE(lo, 0.0f);
    EXPECT_LE(hi, 1.0f);
  }
  auto [tot_lo, tot_hi] = get("CLDTOT").min_max();
  EXPECT_GT(tot_lo, -0.05f);
  EXPECT_LT(tot_hi, 1.05f);

  // Random-overlap identity: CLDTOT >= max individual level (up to noise).
  const auto& tot = get("CLDTOT");
  const auto& hgh = get("CLDHGH");
  for (std::size_t i = 0; i < tot.size(); i += 97)
    EXPECT_GE(tot.array()[i] + 0.05f, hgh.array()[i]);

  // LWCF = FLUTC - FLUT (paper §III-A), up to observation noise.
  const auto& lwcf = get("LWCF");
  const auto& flutc = get("FLUTC");
  const auto& flut = get("FLUT");
  double worst = 0;
  for (std::size_t i = 0; i < lwcf.size(); i += 31)
    worst = std::max(worst,
                     std::abs(static_cast<double>(flutc.array()[i]) -
                              flut.array()[i] - lwcf.array()[i]));
  EXPECT_LT(worst, 3.0);
}

TEST(CesmLike, CloudRadiationCorrelation) {
  const auto fields = make_cesm_like({kTinyCesm, 7});
  const Field* cldhgh = nullptr;
  const Field* lwcf = nullptr;
  for (const auto& f : fields) {
    if (f.name() == "CLDHGH") cldhgh = &f;
    if (f.name() == "LWCF") lwcf = &f;
  }
  ASSERT_TRUE(cldhgh && lwcf);
  // High cloud traps longwave -> strong positive correlation with LWCF.
  EXPECT_GT(pearson(cldhgh->array().span(), lwcf->array().span()), 0.5);
}

TEST(HurricaneLike, FieldInventoryAndVortexStructure) {
  const auto fields = make_hurricane_like({kTinyHurricane, 8});
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].name(), "Uf");
  EXPECT_EQ(fields[1].name(), "Vf");
  EXPECT_EQ(fields[2].name(), "Wf");
  EXPECT_EQ(fields[3].name(), "Pf");

  // Pressure has a clear deficit (eye) relative to the domain edge at z=0.
  const auto& pf = fields[3];
  const std::size_t H = kTinyHurricane[1], W = kTinyHurricane[2];
  float centre_min = 1e30f;
  for (std::size_t y = H / 3; y < 2 * H / 3; ++y)
    for (std::size_t x = W / 3; x < 2 * W / 3; ++x)
      centre_min = std::min(centre_min, pf.array()(0, y, x));
  const float corner = pf.array()(0, 0, 0);
  EXPECT_LT(centre_min, corner - 500.0f);

  // Wind magnitude is hurricane-scale somewhere.
  auto [u_lo, u_hi] = fields[0].min_max();
  EXPECT_GT(std::max(std::abs(u_lo), std::abs(u_hi)), 20.0f);
}

TEST(Dataset, RegistryMetadata) {
  for (auto kind : {DatasetKind::kScale, DatasetKind::kCesm,
                    DatasetKind::kHurricane}) {
    const Shape p = paper_dims(kind);
    const Shape d = default_dims(kind);
    EXPECT_EQ(p.ndim(), d.ndim());
    EXPECT_GE(p.size(), d.size());
    EXPECT_FALSE(dataset_name(kind).empty());
  }
  // Table I dims.
  EXPECT_EQ(paper_dims(DatasetKind::kScale), Shape({98, 1200, 1200}));
  EXPECT_EQ(paper_dims(DatasetKind::kCesm), Shape({1800, 3600}));
  EXPECT_EQ(paper_dims(DatasetKind::kHurricane), Shape({100, 500, 500}));
}

TEST(Dataset, MakeDatasetAndFind) {
  const auto ds = make_dataset(DatasetKind::kCesm, kTinyCesm, 11);
  EXPECT_EQ(ds.name, "CESM-ATM");
  EXPECT_NE(ds.find("CLDTOT"), nullptr);
  EXPECT_EQ(ds.find("NOPE"), nullptr);
}

TEST(Dataset, Table3TargetsMatchPaper) {
  const auto scale = table3_targets(DatasetKind::kScale, true);
  ASSERT_EQ(scale.size(), 2u);
  EXPECT_EQ(scale[0].target, "RH");
  EXPECT_EQ(scale[0].anchors,
            (std::vector<std::string>{"T", "QV", "PRES"}));
  EXPECT_EQ(scale[1].target, "W");

  const auto cesm = table3_targets(DatasetKind::kCesm, true);
  ASSERT_EQ(cesm.size(), 3u);
  EXPECT_EQ(cesm[2].target, "FLUT");
  EXPECT_EQ(cesm[2].anchors.size(), 4u);

  const auto hur = table3_targets(DatasetKind::kHurricane, true);
  ASSERT_EQ(hur.size(), 1u);
  EXPECT_EQ(hur[0].anchors, (std::vector<std::string>{"Uf", "Vf", "Pf"}));

  // Every anchor must exist in the generated dataset.
  for (auto kind : {DatasetKind::kScale, DatasetKind::kCesm,
                    DatasetKind::kHurricane}) {
    const Shape dims = kind == DatasetKind::kCesm ? kTinyCesm : kTinyScale;
    const auto ds = make_dataset(kind, dims, 1);
    for (const auto& spec : table3_targets(kind, false)) {
      EXPECT_NE(ds.find(spec.target), nullptr) << spec.target;
      for (const auto& a : spec.anchors) EXPECT_NE(ds.find(a), nullptr) << a;
    }
  }
}

TEST(SdrIo, Float64Narrowing) {
  const auto path =
      (std::filesystem::temp_directory_path() / "xfc_sdr_f64.bin").string();
  std::vector<double> doubles{1.5, -2.25, 3e30, 0.0, 1e-40};
  std::vector<std::uint8_t> bytes(doubles.size() * sizeof(double));
  std::memcpy(bytes.data(), doubles.data(), bytes.size());
  write_file(path, bytes);

  const Field f = load_f64_as_f32(path, Shape{5}, "dbl");
  EXPECT_EQ(f.array()[0], 1.5f);
  EXPECT_EQ(f.array()[1], -2.25f);
  EXPECT_FLOAT_EQ(f.array()[2], 3e30f);
  EXPECT_THROW(load_f64_as_f32(path, Shape{6}, "bad"), IoError);
  std::filesystem::remove(path);
}

TEST(SdrIo, RoundtripAndValidation) {
  const auto path =
      (std::filesystem::temp_directory_path() / "xfc_sdr_test.f32").string();
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{16, 24}, 12);
  store_f32(path, ds.fields[0]);
  const Field loaded = load_f32(path, Shape{16, 24}, ds.fields[0].name());
  EXPECT_EQ(loaded.array().vec(), ds.fields[0].array().vec());
  EXPECT_THROW(load_f32(path, Shape{16, 25}, "bad"), IoError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace xfc
