// Tests for the tape-based autodiff core (nn/graph.hpp + nn/autodiff.hpp):
// CheckGrad over every op at awkward shapes, forward equality against the
// naive reference kernels, train-vs-infer bit equality, arena zero-alloc
// steady state, and XFC_THREADS-invariance of a full training trajectory
// (proved in a subprocess, since the pool reads XFC_THREADS once).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cfnn/cfnn.hpp"
#include "cfnn/trainer.hpp"
#include "core/rng.hpp"
#include "nn/attention.hpp"
#include "nn/autodiff.hpp"
#include "nn/conv2d.hpp"
#include "nn/graph.hpp"
#include "nn/im2col.hpp"
#include "nn/layers.hpp"
#include "nn/sequential.hpp"

namespace xfc::nn {
namespace {

Tensor random_tensor(std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w, Rng& rng, double scale = 1.0) {
  Tensor t(n, c, h, w);
  for (auto& v : t.vec()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

/// Builds a kTrain graph `pred = build(g, in, rng, keep, m)` with an MSE
/// root against a random target and runs check_grad on it. `keep` and `m`
/// give the builder parameter storage that outlives the graph and exec.
template <typename BuildFn>
CheckGradResult check_op(const GShape& in_shape, std::uint64_t seed,
                         const CheckGradOptions& opts, BuildFn&& build) {
  Model m;
  std::vector<std::unique_ptr<Layer>> keep;
  Rng rng(seed);
  Tensor x = random_tensor(in_shape.n, in_shape.c, in_shape.h, in_shape.w,
                           rng);
  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input(in_shape);
  const NodeRef pred = build(g, in, rng, keep, m);
  const GShape os = g.shape(pred);
  Tensor target = random_tensor(os.n, os.c, os.h, os.w, rng);
  const NodeRef tgt = g.input(os);
  g.mse_loss(pred, tgt);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.bind(tgt, target.data());
  const CheckGradResult r = check_grad(g, exec, opts);
  EXPECT_TRUE(r.ok) << "max rel err " << r.max_rel_err << " at param "
                    << r.worst_param << "[" << r.worst_elem << "]: analytic "
                    << r.worst_analytic << " vs fd " << r.worst_numeric;
  EXPECT_GT(r.checked, 0u);
  return r;
}

std::vector<float>& random_param(Model& m, const char* name, std::size_t n,
                                 Rng& rng, double scale = 1.0) {
  auto& v = m.add(name, n);
  for (auto& e : v) e = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

TEST(CheckGrad, MatMulWithBias) {
  check_op({3, 6, 1, 1}, 0xA1, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Linear>(6, 4, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, MatMulNoBias) {
  check_op({2, 5, 1, 1}, 0xA2, {},
           [](Graph& g, NodeRef in, Rng& rng, auto&, Model& m) {
             auto& w = random_param(m, "w", 3 * 5, rng);
             return g.matmul(in, g.param(w, {3, 5, 1, 1}), 3);
           });
}

TEST(CheckGrad, MatMulOnFlattenedPlanes) {
  // matmul flattens (N, C, H, W) -> (N, C*H*W): in_features = 2*3*4 = 24.
  check_op({2, 2, 3, 4}, 0xA3, {},
           [](Graph& g, NodeRef in, Rng& rng, auto&, Model& m) {
             auto& w = random_param(m, "w", 5 * 24, rng, 0.2);
             auto& b = random_param(m, "b", 5, rng);
             return g.matmul(in, g.param(w, {5, 24, 1, 1}), 5,
                             g.param(b, {1, 5, 1, 1}));
           });
}

TEST(CheckGrad, BiasAddStandalone) {
  check_op({2, 3, 4, 5}, 0xA4, {},
           [](Graph& g, NodeRef in, Rng& rng, auto&, Model& m) {
             auto& b = random_param(m, "b", 3, rng);
             return g.bias_add(in, g.param(b, {1, 3, 1, 1}));
           });
}

TEST(CheckGrad, ReLUOnParam) {
  // ReLU directly over a trainable tensor: the masked gradient path.
  check_op({1, 1, 1, 1}, 0xA5, {},
           [](Graph& g, NodeRef, Rng& rng, auto&, Model& m) {
             auto& p = random_param(m, "p", 2 * 3 * 4 * 5, rng);
             return g.relu(g.param(p, {2, 3, 4, 5}));
           });
}

TEST(CheckGrad, Conv2DKernel3) {
  check_op({2, 3, 5, 6}, 0xB1, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Conv2D>(3, 4, 3, 1, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, Conv2DKernel5) {
  check_op({2, 2, 7, 6}, 0xB2, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Conv2D>(2, 3, 5, 1, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, Conv2DGroupedBatched) {
  check_op({3, 6, 5, 7}, 0xB3, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Conv2D>(6, 4, 3, 2, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, Conv2DDepthwise) {
  check_op({2, 4, 5, 5}, 0xB4, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Conv2D>(4, 4, 3, 4, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, Conv2DOnePixelPlanes) {
  // 1x1 spatial planes with k=3: the entire receptive field is padding
  // except the centre tap — exercises the im2col halo path degenerately.
  check_op({2, 3, 1, 1}, 0xB5, {},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<Conv2D>(3, 2, 3, 1, true, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, ChannelAttention) {
  check_op({2, 4, 5, 5}, 0xC1, {.tol = 2e-3},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<ChannelAttention>(4, 2, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, ChannelAttentionSingleChannel) {
  // c = 1, reduction = 1: mid = 1, the degenerate attention head.
  check_op({2, 1, 3, 4}, 0xC2, {.tol = 2e-3},
           [](Graph& g, NodeRef in, Rng& rng, auto& keep, Model&) {
             keep.push_back(std::make_unique<ChannelAttention>(1, 1, rng));
             return keep.back()->append(g, in);
           });
}

TEST(CheckGrad, FullCfnnGraph) {
  // The complete CFNN stack (conv -> relu -> separable -> attention ->
  // conv) through one check_grad call — the "universal test" a new
  // predictor gets for free.
  Rng rng(0xD1);
  Sequential net;
  net.add(std::make_unique<Conv2D>(3, 8, 3, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2D>(8, 8, 3, 8, true, rng));
  net.add(std::make_unique<Conv2D>(8, 8, 1, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<ChannelAttention>(8, 4, rng));
  net.add(std::make_unique<Conv2D>(8, 2, 3, 1, true, rng));

  Tensor x = random_tensor(2, 3, 8, 8, rng, 0.5);
  Tensor t = random_tensor(2, 2, 8, 8, rng, 0.5);
  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({2, 3, 8, 8});
  const NodeRef tgt = g.input({2, 2, 8, 8});
  g.mse_loss(net.append(g, in), tgt);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.bind(tgt, t.data());

  // Smaller step than the per-op default: through seven layers a 1e-2
  // parameter nudge crosses ReLU kinks and max-pool argmax flips, which
  // breaks the central-difference estimate (not the analytic gradient).
  const CheckGradResult r = check_grad(g, exec, {.eps = 1e-3});
  EXPECT_TRUE(r.ok) << "max rel err " << r.max_rel_err << " at param "
                    << r.worst_param << "[" << r.worst_elem << "]: analytic "
                    << r.worst_analytic << " vs fd " << r.worst_numeric;
  EXPECT_LE(r.max_rel_err, 1e-3);
}

TEST(CheckGrad, ModelRecipe) {
  // The graph-first path with no Layer shims at all: Model owns named
  // parameters, the graph is built inline, one check_grad verifies it.
  Rng rng(0xD2);
  Model m;
  auto& w1 = m.add_xavier("fc1.w", 4 * 6, 6, 4, rng);
  auto& b1 = m.add("fc1.b", 4);
  auto& w2 = m.add_xavier("fc2.w", 2 * 4, 4, 2, rng);

  Tensor x = random_tensor(3, 6, 1, 1, rng);
  Tensor t = random_tensor(3, 2, 1, 1, rng);
  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({3, 6, 1, 1});
  NodeRef h = g.matmul(in, g.param(w1, {4, 6, 1, 1}), 4,
                       g.param(b1, {1, 4, 1, 1}));
  h = g.relu(h);
  h = g.matmul(h, g.param(w2, {2, 4, 1, 1}), 2);
  const NodeRef tgt = g.input({3, 2, 1, 1});
  g.mse_loss(h, tgt);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.bind(tgt, t.data());

  const CheckGradResult r = check_grad(m, g, exec);
  EXPECT_TRUE(r.ok) << "worst offender " << m.name(r.worst_param) << "["
                    << r.worst_elem << "]";
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(g.params().size(), 3u);
}

TEST(Graph, SharedParamRegistersOnce) {
  std::vector<float> w(3 * 5, 0.5f);
  Graph g(Graph::Mode::kTrain);
  const NodeRef a = g.param(w, {3, 5, 1, 1});
  const NodeRef b = g.param(w, {3, 5, 1, 1});
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(g.params().size(), 1u);
}

TEST(GraphForward, ConvMatchesNaiveReference) {
  Rng rng(0xE1);
  // Geometry sweep mirroring test_gemm's table, incl. groups and k=5.
  struct Case {
    std::size_t n, in_ch, out_ch, k, groups, h, w;
  };
  const Case cases[] = {
      {1, 1, 1, 3, 1, 5, 7},  {2, 3, 4, 3, 1, 7, 9},  {2, 4, 4, 3, 4, 6, 5},
      {1, 4, 6, 5, 2, 9, 7},  {3, 5, 3, 1, 1, 4, 11}, {1, 2, 3, 5, 1, 4, 1},
  };
  for (const Case& c : cases) {
    Conv2D conv(c.in_ch, c.out_ch, c.k, c.groups, true, rng);
    Tensor x = random_tensor(c.n, c.in_ch, c.h, c.w, rng);
    const Tensor ref = conv2d_ref_forward(x, conv.weight(),
                                          conv.bias().data(), c.out_ch, c.k,
                                          c.groups);

    Graph g(Graph::Mode::kInfer);
    const NodeRef in = g.input({c.n, c.in_ch, c.h, c.w});
    const NodeRef out = conv.append(g, in);
    GraphExec exec(g, tls_workspace());
    exec.bind(in, x.data());
    exec.forward();
    const float* y = exec.value(out);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const double denom =
          std::max(1.0, std::abs(static_cast<double>(ref.vec()[i])));
      EXPECT_NEAR(y[i], ref.vec()[i], 1e-4 * denom)
          << "case k=" << c.k << " g=" << c.groups << " elem " << i;
    }
  }
}

TEST(GraphForward, AttentionMatchesNaiveReference) {
  Rng rng(0xE2);
  const std::size_t B = 2, C = 4, R = 2, H = 5, W = 6, mid = C / R;
  ChannelAttention att(C, R, rng);
  Tensor x = random_tensor(B, C, H, W, rng);

  Graph g(Graph::Mode::kInfer);
  const NodeRef in = g.input({B, C, H, W});
  const NodeRef out = att.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();
  const float* y = exec.value(out);

  // Straight-line reference: per-plane avg/max pool, shared MLP on both
  // descriptors, sigmoid of the sum, rescale.
  auto mlp = [&](const std::vector<double>& v, std::size_t b,
                 std::size_t c) {
    double out_c = att.b2()[c];
    for (std::size_t m = 0; m < mid; ++m) {
      double h1 = att.b1()[m];
      for (std::size_t i = 0; i < C; ++i)
        h1 += static_cast<double>(att.w1()[m * C + i]) * v[b * C + i];
      h1 = std::max(0.0, h1);
      out_c += static_cast<double>(att.w2()[c * mid + m]) * h1;
    }
    return out_c;
  };
  std::vector<double> avg(B * C), mx(B * C);
  for (std::size_t b = 0; b < B; ++b)
    for (std::size_t c = 0; c < C; ++c) {
      const float* p = x.plane(b, c);
      double s = 0.0, m = p[0];
      for (std::size_t i = 0; i < H * W; ++i) {
        s += p[i];
        m = std::max(m, static_cast<double>(p[i]));
      }
      avg[b * C + c] = s / static_cast<double>(H * W);
      mx[b * C + c] = m;
    }
  for (std::size_t b = 0; b < B; ++b)
    for (std::size_t c = 0; c < C; ++c) {
      const double z = mlp(avg, b, c) + mlp(mx, b, c);
      const double scale = 1.0 / (1.0 + std::exp(-z));
      const float* xp = x.plane(b, c);
      const float* yp = y + (b * C + c) * H * W;
      for (std::size_t i = 0; i < H * W; ++i)
        EXPECT_NEAR(yp[i], xp[i] * scale, 1e-4)
            << "b=" << b << " c=" << c << " i=" << i;
    }
}

TEST(GraphForward, TrainAndInferModesBitEqual) {
  // Half the frozen-inference contract: whichever mode runs the kernels,
  // the arithmetic is identical — buffer recycling in kInfer must not
  // change a single bit of the output.
  Rng rng(0xE3);
  Sequential net;
  net.add(std::make_unique<Conv2D>(2, 6, 3, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2D>(6, 6, 3, 6, true, rng));
  net.add(std::make_unique<Conv2D>(6, 6, 1, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<ChannelAttention>(6, 2, rng));
  net.add(std::make_unique<Conv2D>(6, 1, 3, 1, true, rng));
  Tensor x = random_tensor(2, 2, 9, 7, rng);

  auto run = [&](Graph::Mode mode) {
    Graph g(mode);
    const NodeRef in = g.input({2, 2, 9, 7});
    const NodeRef out = net.append(g, in);
    GraphExec exec(g, tls_workspace());
    exec.bind(in, x.data());
    exec.forward();
    const float* y = exec.value(out);
    return std::vector<float>(y, y + g.shape(out).size());
  };
  const auto yi = run(Graph::Mode::kInfer);
  const auto yt = run(Graph::Mode::kTrain);
  ASSERT_EQ(yi.size(), yt.size());
  EXPECT_EQ(std::memcmp(yi.data(), yt.data(), yi.size() * sizeof(float)), 0);
}

TEST(GraphExecArena, SteadyStateTrainingReservesNothing) {
  // After construction + one warmup iteration, repeated forward/backward
  // must not grow the exec's arena: activations, gradients and the
  // backward kernels' caller-side scratch were all acquired by then. A
  // private (non-tls) workspace keeps the measurement deterministic — the
  // per-chunk im2col scratch lives on whichever pool thread runs the
  // chunk, and chunk placement varies with XFC_THREADS.
  Rng rng(0xF1);
  Sequential net;
  net.add(std::make_unique<Conv2D>(3, 8, 3, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<ChannelAttention>(8, 4, rng));
  net.add(std::make_unique<Conv2D>(8, 2, 3, 1, true, rng));
  Tensor x = random_tensor(4, 3, 16, 16, rng);
  Tensor t = random_tensor(4, 2, 16, 16, rng);

  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({4, 3, 16, 16});
  const NodeRef tgt = g.input({4, 2, 16, 16});
  g.mse_loss(net.append(g, in), tgt);
  Workspace ws;
  GraphExec exec(g, ws);
  exec.bind(in, x.data());
  exec.bind(tgt, t.data());

  g.zero_grad();
  exec.forward();
  exec.backward();
  const std::size_t reserved = ws.bytes_reserved();
  for (int it = 0; it < 5; ++it) {
    g.zero_grad();
    exec.forward();
    exec.backward();
  }
  EXPECT_EQ(ws.bytes_reserved(), reserved);
}

TEST(GraphExecConcurrency, SharedModelInferenceIsBitStable) {
  // Many threads running inference against one shared const model (each
  // with a private Graph + GraphExec on its own tls arena) must all produce
  // exactly the serial answer. The tsan preset polices the data-race half
  // of this contract.
  Rng rng(0xF2);
  const CfnnModel model(3, 2, CfnnConfig{8, 4, 3}, 77);
  Tensor x = random_tensor(2, 3, 24, 24, rng);
  const Tensor expect = model.infer(x);

  std::vector<std::vector<float>> results(4);
  std::vector<std::thread> threads;
  for (std::size_t ti = 0; ti < results.size(); ++ti)
    threads.emplace_back([&, ti] {
      for (int rep = 0; rep < 3; ++rep) {
        const Tensor y = model.infer(x);
        results[ti] = y.vec();
      }
    });
  for (auto& th : threads) th.join();
  for (const auto& r : results) {
    ASSERT_EQ(r.size(), expect.size());
    EXPECT_EQ(
        std::memcmp(r.data(), expect.vec().data(), r.size() * sizeof(float)),
        0);
  }
}

// ---------------------------------------------------------------------------
// Thread-count determinism of a full training run. The pool reads
// XFC_THREADS once per process, so the 1-vs-4 comparison re-executes this
// binary as a subprocess: the Child test below trains a small CFNN and
// (when XFC_AUTODIFF_PRINT is set) prints the exact loss trajectory in hex.

std::vector<double> tiny_training_run() {
  Rng rng(0x7EA);
  Tensor inputs(2, 3, 40, 40), targets(2, 2, 40, 40);
  for (auto& v : inputs.vec()) v = static_cast<float>(rng.normal());
  for (std::size_t i = 0; i < targets.size(); ++i)
    targets.vec()[i] = 0.5f * inputs.vec()[i % inputs.size()] +
                       static_cast<float>(rng.normal(0.0, 0.05));
  CfnnModel model(3, 2, CfnnConfig{8, 4, 3}, 42);
  CfnnTrainOptions opt;
  opt.epochs = 3;
  opt.patches_per_epoch = 32;
  opt.patch = 16;
  opt.batch = 8;
  return train_cfnn(model, inputs, targets, opt);
}

TEST(AutodiffDeterminism, ChildTrajectory) {
  const auto losses = tiny_training_run();
  ASSERT_EQ(losses.size(), 3u);
  for (const double l : losses) EXPECT_TRUE(std::isfinite(l));
  if (std::getenv("XFC_AUTODIFF_PRINT") != nullptr)
    for (const double l : losses) std::printf("TRAJ %a\n", l);
}

std::vector<std::string> run_child_trajectory(int threads) {
  // Resolve our own binary here: /proc/self/exe inside the popen'd shell
  // would name the shell, not this test.
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof exe - 1);
  if (len <= 0) return {};
  exe[len] = '\0';
  const std::string cmd =
      "XFC_AUTODIFF_PRINT=1 XFC_THREADS=" + std::to_string(threads) + " '" +
      exe + "' --gtest_filter=AutodiffDeterminism.ChildTrajectory"
      " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return {};
  std::vector<std::string> traj;
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr)
    if (std::strncmp(line, "TRAJ ", 5) == 0) traj.emplace_back(line + 5);
  const int rc = pclose(pipe);
  if (rc != 0) return {};
  return traj;
}

TEST(AutodiffDeterminism, LossTrajectoryIsThreadCountInvariant) {
  const auto t1 = run_child_trajectory(1);
  const auto t4 = run_child_trajectory(4);
  ASSERT_EQ(t1.size(), 3u) << "child run with XFC_THREADS=1 failed";
  ASSERT_EQ(t4.size(), 3u) << "child run with XFC_THREADS=4 failed";
  EXPECT_EQ(t1, t4);  // exact hex-printed doubles: bitwise identical
}

}  // namespace
}  // namespace xfc::nn
