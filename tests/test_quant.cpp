// Unit tests for error bounds and dual quantization.

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "quant/dual_quant.hpp"
#include "quant/error_bound.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

TEST(ErrorBound, AbsoluteModePassesThrough) {
  const auto eb = ErrorBound::absolute(0.5);
  EXPECT_DOUBLE_EQ(eb.absolute_for(100.0), 0.5);
  EXPECT_DOUBLE_EQ(eb.absolute_for(0.0), 0.5);
}

TEST(ErrorBound, RelativeModeScalesWithRange) {
  const auto eb = ErrorBound::relative(1e-3);
  EXPECT_DOUBLE_EQ(eb.absolute_for(200.0), 0.2);
}

TEST(ErrorBound, RelativeModeOnConstantFieldStaysPositive) {
  const auto eb = ErrorBound::relative(1e-3);
  EXPECT_GT(eb.absolute_for(0.0), 0.0);
}

TEST(ErrorBound, RejectsNonPositiveBound) {
  EXPECT_THROW(ErrorBound::absolute(0.0), InvalidArgument);
  EXPECT_THROW(ErrorBound::relative(-1e-3), InvalidArgument);
}

class PrequantBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(PrequantBoundTest, ReconstructionWithinBound) {
  const double eb = GetParam();
  Rng rng(static_cast<std::uint64_t>(1.0 / eb));
  F32Array values(Shape{64, 64});
  for (auto& v : values.vec())
    v = static_cast<float>(rng.normal(5.0, 40.0));

  const I32Array codes = prequantize(values, eb);
  const F32Array recon = dequantize(codes, eb, values.shape());
  const Field as_field("tmp", values);
  const double tol = test::bound_tolerance(eb, as_field);
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_LE(std::abs(static_cast<double>(values[i]) - recon[i]), tol)
        << "at index " << i;
}

INSTANTIATE_TEST_SUITE_P(Bounds, PrequantBoundTest,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0));

TEST(Prequant, CodesAreNearestMultiples) {
  F32Array v(Shape{4}, {0.0f, 0.9f, 1.1f, -3.05f});
  const double eb = 0.5;  // step 1.0
  const I32Array codes = prequantize(v, eb);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 1);
  EXPECT_EQ(codes[2], 1);
  EXPECT_EQ(codes[3], -3);
}

TEST(Prequant, OverflowThrows) {
  F32Array v(Shape{2}, {1e30f, 0.0f});
  EXPECT_THROW(prequantize(v, 1e-6), InvalidArgument);
}

TEST(Prequant, BoundaryCodeAccepted) {
  // |q| == kMaxQuantCode is a valid code (the documented 2^30 bound is
  // inclusive); one step beyond still throws.
  const float big = 1073741824.0f;  // 2^30, exactly representable
  F32Array v(Shape{2}, {big, -big});
  const I32Array codes = prequantize(v, 0.5);  // step 1.0
  EXPECT_EQ(codes[0], static_cast<std::int32_t>(kMaxQuantCode));
  EXPECT_EQ(codes[1], static_cast<std::int32_t>(-kMaxQuantCode));

  F32Array over(Shape{1}, {1.5f * big});
  EXPECT_THROW(prequantize(over, 0.5), InvalidArgument);
}

TEST(Prequant, RejectsNonPositiveBound) {
  F32Array v(Shape{2}, {1.0f, 2.0f});
  EXPECT_THROW(prequantize(v, 0.0), InvalidArgument);
  EXPECT_THROW(prequantize(v, -1.0), InvalidArgument);
}

TEST(Dequant, ShapeMismatchThrows) {
  I32Array codes(Shape{8});
  EXPECT_THROW(dequantize(codes, 0.1, Shape{4}), InvalidArgument);
}

TEST(DualQuant, IdempotentOnReconstruction) {
  // Prequantizing an already-reconstructed array must reproduce the codes
  // (the property that makes encoder-side reconstruction exact).
  Rng rng(77);
  F32Array values(Shape{1000});
  for (auto& v : values.vec())
    v = static_cast<float>(rng.uniform(-1000.0, 1000.0));
  const double eb = 0.01;
  const I32Array codes = prequantize(values, eb);
  const F32Array recon = dequantize(codes, eb, values.shape());
  const I32Array codes2 = prequantize(recon, eb);
  EXPECT_EQ(codes.vec(), codes2.vec());
}

}  // namespace
}  // namespace xfc
