// Unit tests for src/io: bit streams, byte buffers, CRC32, file IO.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "io/bitstream.hpp"
#include "io/bytebuffer.hpp"
#include "io/crc32.hpp"
#include "io/file.hpp"

namespace xfc {
namespace {

TEST(BitStream, SingleBits) {
  BitWriter bw;
  const unsigned pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
  for (unsigned b : pattern) bw.put_bit(b);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (unsigned b : pattern) EXPECT_EQ(br.get_bit(), b);
}

TEST(BitStream, MsbFirstByteLayout) {
  BitWriter bw;
  bw.put_bits(0b1011, 4);
  bw.put_bits(0b0010, 4);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110010);
}

TEST(BitStream, PartialByteZeroPadded) {
  BitWriter bw;
  bw.put_bits(0b101, 3);
  const auto bytes = bw.take();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10100000);
}

TEST(BitStream, MixedWidthWordBoundarySpills) {
  // Mixed-width writes that straddle the 64-bit accumulator spill in every
  // alignment, with bit_count checked after each append.
  Rng rng(4242);
  struct Item {
    std::uint64_t v;
    unsigned w;
  };
  std::vector<Item> items;
  for (int i = 0; i < 3000; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng.uniform_index(57));
    items.push_back({rng.next_u64() & ((std::uint64_t{1} << w) - 1), w});
  }
  BitWriter bw;
  std::size_t bits = 0;
  for (const Item& it : items) {
    bw.put_bits(it.v, it.w);
    bits += it.w;
    ASSERT_EQ(bw.bit_count(), bits);
  }
  const auto bytes = bw.take();
  EXPECT_EQ(bytes.size(), (bits + 7) / 8);
  BitReader br(bytes);
  for (const Item& it : items) ASSERT_EQ(br.get_bits(it.w), it.v);
}

class BitWidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitWidthTest, RoundtripRandomValues) {
  const unsigned width = GetParam();
  Rng rng(width * 7919 + 1);
  std::vector<std::uint64_t> values(200);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  for (auto& v : values) v = rng.next_u64() & mask;

  BitWriter bw;
  for (auto v : values) bw.put_bits(v, width);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (auto v : values) {
    if (width <= 57) {
      EXPECT_EQ(br.get_bits(width), v);
    } else {
      // Wide values read in two chunks.
      const std::uint64_t hi = br.get_bits(32);
      const std::uint64_t lo = br.get_bits(width - 32);
      EXPECT_EQ((hi << (width - 32)) | lo, v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitWidthTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 7u, 8u, 9u, 13u,
                                           16u, 23u, 31u, 32u, 33u, 48u, 57u,
                                           64u));

TEST(BitStream, MixedWidthsRoundtrip) {
  Rng rng(99);
  std::vector<std::pair<std::uint64_t, unsigned>> items;
  for (int i = 0; i < 500; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng.uniform_index(57));
    const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
    items.emplace_back(rng.next_u64() & mask, w);
  }
  BitWriter bw;
  for (auto [v, w] : items) bw.put_bits(v, w);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (auto [v, w] : items) EXPECT_EQ(br.get_bits(w), v);
}

TEST(BitStream, PeekDoesNotConsume) {
  BitWriter bw;
  bw.put_bits(0xABCD, 16);
  const auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.peek_bits(8), 0xABu);
  EXPECT_EQ(br.peek_bits(16), 0xABCDu);
  EXPECT_EQ(br.get_bits(16), 0xABCDu);
}

TEST(BitStream, PeekPastEndReadsZero) {
  BitWriter bw;
  bw.put_bits(0xFF, 8);
  const auto bytes = bw.take();
  BitReader br(bytes);
  br.skip_bits(8);
  EXPECT_EQ(br.peek_bits(8), 0u);  // past end: zero-fill
}

TEST(BitStream, ReadPastEndThrows) {
  BitWriter bw;
  bw.put_bits(0x3, 2);
  const auto bytes = bw.take();
  BitReader br(bytes);
  br.get_bits(8);  // padded byte exists
  EXPECT_THROW(br.get_bits(1), CorruptStream);
  EXPECT_THROW(br.skip_bits(1), CorruptStream);
}

TEST(BitStream, BitCountTracksWrites) {
  BitWriter bw;
  EXPECT_EQ(bw.bit_count(), 0u);
  bw.put_bits(0, 13);
  EXPECT_EQ(bw.bit_count(), 13u);
}

TEST(BitStream, WriterReusableAfterTake) {
  BitWriter bw;
  bw.put_bits(0xAA, 8);
  EXPECT_EQ(bw.take().size(), 1u);
  bw.put_bits(0x55, 8);
  const auto again = bw.take();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], 0x55);
}

TEST(ByteBuffer, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.i64(-99999999999ll);
  w.f32(3.25f);
  w.f64(-2.5e300);
  const auto bytes = w.take();

  ByteReader r(bytes);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.i64(), -99999999999ll);
  EXPECT_EQ(r.f32(), 3.25f);
  EXPECT_EQ(r.f64(), -2.5e300);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBuffer, VarintBoundaries) {
  ByteWriter w;
  const std::uint64_t cases[] = {0,    1,    127,        128,
                                 300,  16383, 16384,     UINT32_MAX,
                                 UINT64_MAX, 0x7F, 0x80};
  for (auto v : cases) w.varint(v);
  const auto bytes = w.take();
  ByteReader r(bytes);
  for (auto v : cases) EXPECT_EQ(r.varint(), v);
}

TEST(ByteBuffer, BlobAndString) {
  ByteWriter w;
  std::vector<std::uint8_t> payload{1, 2, 3, 250};
  w.blob(payload);
  w.str("hello xfc");
  w.blob({});  // empty blob
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.blob(), payload);
  EXPECT_EQ(r.str(), "hello xfc");
  EXPECT_TRUE(r.blob().empty());
}

TEST(ByteBuffer, UnderrunThrows) {
  ByteWriter w;
  w.u16(7);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.u32(), CorruptStream);
}

TEST(ByteBuffer, OverlongVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bad);
  EXPECT_THROW(r.varint(), CorruptStream);
}

TEST(Crc32, KnownVectors) {
  // Standard test vector: CRC-32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(Crc32::of({p, s.size()}), 0xCBF43926u);

  EXPECT_EQ(Crc32::of({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  Rng rng(3);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());

  Crc32 inc;
  inc.update({data.data(), 100});
  inc.update({data.data() + 100, 900});
  EXPECT_EQ(inc.value(), Crc32::of(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0x5A);
  const auto before = Crc32::of(data);
  data[33] ^= 0x04;
  EXPECT_NE(Crc32::of(data), before);
}

TEST(FileIo, RoundtripAndErrors) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xfc_io_test.bin").string();
  std::vector<std::uint8_t> payload{0, 1, 2, 255, 128};
  write_file(path, payload);
  EXPECT_EQ(read_file(path), payload);
  std::filesystem::remove(path);
  EXPECT_THROW(read_file(path), IoError);
}

TEST(FileIo, Float32Roundtrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "xfc_io_test.f32").string();
  std::vector<float> values{1.5f, -2.25f, 0.0f, 3e20f};
  write_f32_file(path, values);
  EXPECT_EQ(read_f32_file(path), values);

  // Non-multiple-of-4 file is rejected.
  write_file(path, {1, 2, 3});
  EXPECT_THROW(read_f32_file(path), IoError);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace xfc
