// Tests for the metrics module: PSNR/SSIM identities, correlation,
// entropy, image dumps.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/rng.hpp"
#include "io/file.hpp"
#include "metrics/image.hpp"
#include "metrics/metrics.hpp"

namespace xfc {
namespace {

Field noisy_field(const Shape& shape, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(static_cast<double>(i % w) / 5.0) *
                                  10.0 +
                              rng.normal(0.0, sigma));
  return Field("nf", std::move(a));
}

TEST(Mse, KnownValue) {
  std::vector<float> a{1, 2, 3}, b{2, 2, 5};
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 0.0 + 4.0) / 3.0);
  EXPECT_DOUBLE_EQ(max_abs_error(a, b), 2.0);
}

TEST(Mse, SizeMismatchThrows) {
  std::vector<float> a{1}, b{1, 2};
  EXPECT_THROW(mse(a, b), InvalidArgument);
}

TEST(Psnr, IdenticalFieldsCapAt999) {
  const Field f = noisy_field(Shape{32, 32}, 1.0, 1);
  EXPECT_EQ(psnr(f, f), 999.0);
}

TEST(Psnr, KnownUniformError) {
  // Error of constant c on range R: PSNR = 20 log10(R / c).
  F32Array a(Shape{100});
  for (std::size_t i = 0; i < 100; ++i)
    a[i] = static_cast<float>(i);  // range 99
  Field ref("r", a);
  F32Array b = a;
  for (auto& v : b.vec()) v += 0.5f;
  Field rec("x", std::move(b));
  EXPECT_NEAR(psnr(ref, rec), 20.0 * std::log10(99.0 / 0.5), 1e-6);
}

TEST(Psnr, DecreasesWithMoreNoise) {
  const Field ref = noisy_field(Shape{64, 64}, 0.0, 2);
  Field small = ref, large = ref;
  Rng rng(3);
  for (auto& v : small.array().vec())
    v += static_cast<float>(rng.normal(0, 0.01));
  for (auto& v : large.array().vec())
    v += static_cast<float>(rng.normal(0, 0.5));
  EXPECT_GT(psnr(ref, small), psnr(ref, large));
}

TEST(Nrmse, ScaleInvariantMeaning) {
  const Field ref = noisy_field(Shape{64, 64}, 0.0, 4);
  Field rec = ref;
  for (auto& v : rec.array().vec()) v += 0.1f;
  const double n = nrmse(ref, rec);
  EXPECT_NEAR(n, 0.1 / ref.value_range(), 1e-6);
}

TEST(Ssim, IdentityIsOne) {
  const Field f = noisy_field(Shape{32, 48}, 1.0, 5);
  EXPECT_NEAR(ssim(f, f), 1.0, 1e-9);
}

TEST(Ssim, DegradesWithDistortion) {
  const Field ref = noisy_field(Shape{64, 64}, 0.5, 6);
  Field mild = ref, severe = ref;
  Rng rng(7);
  for (auto& v : mild.array().vec())
    v += static_cast<float>(rng.normal(0, 0.05));
  for (auto& v : severe.array().vec())
    v += static_cast<float>(rng.normal(0, 3.0));
  EXPECT_GT(ssim(ref, mild), ssim(ref, severe));
  EXPECT_LT(ssim(ref, severe), 0.99);
}

TEST(Ssim, WorksOn3D) {
  const Field ref = noisy_field(Shape{4, 32, 32}, 0.5, 8);
  EXPECT_NEAR(ssim(ref, ref), 1.0, 1e-9);
}

TEST(Pearson, PerfectAndInverseCorrelation) {
  std::vector<float> a{1, 2, 3, 4, 5};
  std::vector<float> b{2, 4, 6, 8, 10};
  std::vector<float> c{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
}

TEST(Pearson, IndependentNoiseNearZero) {
  Rng rng(9);
  std::vector<float> a(10000), b(10000);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  EXPECT_LT(std::abs(pearson(a, b)), 0.05);
}

TEST(Pearson, ConstantInputGivesZero) {
  std::vector<float> a{3, 3, 3}, b{1, 2, 3};
  EXPECT_EQ(pearson(a, b), 0.0);
}

TEST(CorrelationMatrix, SymmetricWithUnitDiagonal) {
  const Field f1 = noisy_field(Shape{32, 32}, 0.5, 10);
  const Field f2 = noisy_field(Shape{32, 32}, 0.5, 11);
  const Field f3 = noisy_field(Shape{32, 32}, 0.5, 12);
  const auto m = correlation_matrix({&f1, &f2, &f3});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(m[i][i], 1.0);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(m[i][j], m[j][i]);
  }
}

TEST(SampleEntropy, BoundsAndOrdering) {
  Rng rng(13);
  std::vector<float> uniform(20000), constant(20000, 5.0f);
  for (auto& v : uniform) v = static_cast<float>(rng.uniform());
  const double hu = sample_entropy(uniform, 256);
  EXPECT_GT(hu, 7.0);   // near log2(256)
  EXPECT_LE(hu, 8.0);
  EXPECT_EQ(sample_entropy(constant, 256), 0.0);
}

TEST(BitrateHelpers, Arithmetic) {
  EXPECT_DOUBLE_EQ(bit_rate(1000, 1000), 8.0);
  EXPECT_DOUBLE_EQ(compression_ratio(4000, 1000), 4.0);
}

TEST(Image, PgmWriteAndSliceExtraction) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "xfc_img_test.pgm").string();

  Field f("vol", F32Array(Shape{3, 8, 10}));
  for (std::size_t z = 0; z < 3; ++z)
    for (std::size_t y = 0; y < 8; ++y)
      for (std::size_t x = 0; x < 10; ++x)
        f.array()(z, y, x) = static_cast<float>(z * 100 + y * 10 + x);

  const auto slice = extract_slice(f, 0, 1);
  EXPECT_EQ(slice.shape(), Shape({8, 10}));
  EXPECT_EQ(slice(2, 3), 123.0f);

  const auto slice1 = extract_slice(f, 1, 4);
  EXPECT_EQ(slice1.shape(), Shape({3, 10}));
  EXPECT_EQ(slice1(2, 7), 247.0f);

  dump_field_slice(path, f, 0, 0);
  const auto bytes = read_file(path);
  ASSERT_GT(bytes.size(), 15u);
  EXPECT_EQ(bytes[0], 'P');
  EXPECT_EQ(bytes[1], '5');
  std::filesystem::remove(path);
}

TEST(Image, PpmColormapOutput) {
  const auto path =
      (std::filesystem::temp_directory_path() / "xfc_img_test.ppm").string();
  F32Array plane(Shape{2, 3}, {0.0f, 2.0f, 4.0f, 6.0f, 8.0f, 10.0f});
  write_ppm(path, plane, 0.0f, 10.0f);
  const auto bytes = read_file(path);
  // Header "P6\n3 2\n255\n" = 11 bytes + 6 RGB triplets.
  ASSERT_EQ(bytes.size(), 11u + 18u);
  EXPECT_EQ(bytes[0], 'P');
  EXPECT_EQ(bytes[1], '6');
  // Viridis endpoints: low end dark purple (B > R > G), high end yellow
  // (R ~ G >> B).
  EXPECT_GT(bytes[11 + 2], bytes[11 + 1]);           // first pixel: B > G
  EXPECT_GT(bytes[11 + 15], 200);                    // last pixel: R high
  EXPECT_LT(bytes[11 + 17], 100);                    // last pixel: B low
  std::filesystem::remove(path);
}

TEST(Image, PgmValueMapping) {
  const auto path =
      (std::filesystem::temp_directory_path() / "xfc_img_map.pgm").string();
  F32Array plane(Shape{1, 3}, {0.0f, 5.0f, 10.0f});
  write_pgm(path, plane, 0.0f, 10.0f);
  const auto bytes = read_file(path);
  // Header "P5\n3 1\n255\n" = 11 bytes, then 0, 127/128, 255.
  ASSERT_EQ(bytes.size(), 11u + 3u);
  EXPECT_EQ(bytes[11], 0);
  EXPECT_NEAR(bytes[12], 127.5, 1.0);
  EXPECT_EQ(bytes[13], 255);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace xfc
