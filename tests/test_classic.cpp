// Tests for the classic (sequential, non-dual-quant) SZ pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "metrics/metrics.hpp"
#include "sz/classic.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

Field make_field(const Shape& shape, std::uint64_t seed, double noise) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w) / 11.0;
    const double y = static_cast<double>(i / w) / 23.0;
    a[i] = static_cast<float>(40.0 * std::sin(x) * std::cos(y) +
                              rng.normal(0.0, noise));
  }
  return Field("cls", std::move(a));
}

using ClassicCase = std::tuple<int, double, LorenzoOrder>;

class ClassicBoundSweep : public ::testing::TestWithParam<ClassicCase> {};

TEST_P(ClassicBoundSweep, ErrorBoundHolds) {
  const auto& [rank, rel_eb, order] = GetParam();
  const Shape shape = rank == 1   ? Shape{3001}
                      : rank == 2 ? Shape{53, 71}
                                  : Shape{9, 19, 27};
  const Field field = make_field(shape, 31 + rank, 0.3);

  ClassicOptions opt;
  opt.eb = ErrorBound::relative(rel_eb);
  opt.order = order;
  SzStats stats;
  const auto stream = classic_compress(field, opt, &stats);
  const Field out = classic_decompress(stream);

  const double abs_eb = opt.eb.absolute_for(field.value_range());
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, field));
  EXPECT_EQ(out.name(), field.name());
  EXPECT_EQ(out.shape(), field.shape());
  EXPECT_GT(stats.compression_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    RanksBoundsOrders, ClassicBoundSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(LorenzoOrder::kOne,
                                         LorenzoOrder::kTwo)));

TEST(Classic, OutlierEscapePathExact) {
  // A spike train forces escapes; escaped points are stored verbatim.
  Rng rng(5);
  F32Array a(Shape{2000});
  for (std::size_t i = 0; i < 2000; ++i) {
    a[i] = static_cast<float>(rng.normal(0, 0.1));
    if (i % 97 == 0) a[i] = static_cast<float>(rng.normal(0, 1e5));
  }
  const Field field("spiky", std::move(a));
  ClassicOptions opt;
  opt.eb = ErrorBound::absolute(1e-4);
  opt.quant_radius = 64;
  const Field out = classic_decompress(classic_compress(field, opt));
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(1e-4, field));
}

TEST(Classic, ComparableRatioToDualQuant) {
  // Same field, same bound: the two SZ variants should land within ~25% of
  // each other (they share predictor + entropy coder; only the
  // quantization order differs).
  const Field field = make_field(Shape{96, 96}, 8, 0.2);
  SzOptions dual;
  dual.eb = ErrorBound::relative(1e-3);
  ClassicOptions classic;
  classic.eb = ErrorBound::relative(1e-3);
  SzStats sd, sc;
  sz_compress(field, dual, &sd);
  classic_compress(field, classic, &sc);
  EXPECT_GT(sc.compression_ratio, sd.compression_ratio * 0.75);
  EXPECT_LT(sc.compression_ratio, sd.compression_ratio * 1.35);
}

TEST(Classic, RejectsForeignStreams) {
  const Field field = make_field(Shape{32, 32}, 9, 0.1);
  const auto dual_stream = sz_compress(field, SzOptions{});
  EXPECT_THROW(classic_decompress(dual_stream), CorruptStream);

  const auto classic_stream = classic_compress(field, ClassicOptions{});
  EXPECT_THROW(sz_decompress(classic_stream), CorruptStream);
}

TEST(Classic, CorruptStreamDetected) {
  const Field field = make_field(Shape{40, 40}, 10, 0.1);
  auto stream = classic_compress(field, ClassicOptions{});
  stream[stream.size() / 2] ^= 0x20;
  EXPECT_THROW(classic_decompress(stream), CorruptStream);
}

TEST(Classic, ConstantField) {
  F32Array a(Shape{64, 64});
  for (auto& v : a.vec()) v = -7.5f;
  const Field field("const", std::move(a));
  ClassicOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  SzStats stats;
  const auto stream = classic_compress(field, opt, &stats);
  const Field out = classic_decompress(stream);
  EXPECT_GT(stats.compression_ratio, 50.0);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_NEAR(out.array()[i], -7.5f, 2e-3);
}

}  // namespace
}  // namespace xfc
