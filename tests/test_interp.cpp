// Tests for the interpolation-based pipeline (SZ3-style level traversal).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "metrics/metrics.hpp"
#include "sz/interpolation.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

Field wave_field(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w) / 17.0;
    const double y = static_cast<double>((i / w) % 97) / 29.0;
    a[i] = static_cast<float>(std::sin(x) * std::cos(y) * 80.0 +
                              rng.normal(0.0, 0.05));
  }
  return Field("wave", std::move(a));
}

using InterpCase = std::tuple<int /*rank*/, double /*eb*/, InterpMethod>;

class InterpBoundSweep : public ::testing::TestWithParam<InterpCase> {};

TEST_P(InterpBoundSweep, ErrorBoundHolds) {
  const auto& [rank, rel_eb, method] = GetParam();
  const Shape shape = rank == 1   ? Shape{2039}   // prime: stresses edges
                      : rank == 2 ? Shape{61, 67}
                                  : Shape{9, 21, 33};
  const Field field = wave_field(shape, 7 + rank);

  InterpOptions opt;
  opt.eb = ErrorBound::relative(rel_eb);
  opt.method = method;
  SzStats stats;
  const auto stream = interp_compress(field, opt, &stats);
  const Field out = interp_decompress(stream);

  const double abs_eb = opt.eb.absolute_for(field.value_range());
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, field));
  EXPECT_EQ(out.shape(), field.shape());
  EXPECT_GT(stats.compression_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    RanksBoundsMethods, InterpBoundSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(1e-2, 1e-3, 1e-4),
                       ::testing::Values(InterpMethod::kLinear,
                                         InterpMethod::kCubic)));

TEST(Interp, TinyShapesCovered) {
  for (auto shape : {Shape{1}, Shape{2}, Shape{3}, Shape{1, 1}, Shape{2, 3},
                     Shape{1, 5}, Shape{2, 2, 2}, Shape{1, 1, 7}}) {
    Field f("tiny", F32Array(shape));
    for (std::size_t i = 0; i < f.size(); ++i)
      f.array()[i] = static_cast<float>(i * 1.5);
    InterpOptions opt;
    opt.eb = ErrorBound::absolute(0.01);
    const auto stream = interp_compress(f, opt);
    const Field out = interp_decompress(stream);
    EXPECT_LE(max_abs_error(f.array().span(), out.array().span()),
              0.01 * (1.0 + 1e-9))
        << "shape ndim " << shape.ndim();
  }
}

TEST(Interp, CubicBeatsLinearOnSmoothData) {
  // Pure smooth signal: cubic interpolation predicts better, so it should
  // compress at least as well.
  F32Array a(Shape{128, 128});
  for (std::size_t i = 0; i < 128; ++i)
    for (std::size_t j = 0; j < 128; ++j)
      a(i, j) = static_cast<float>(std::sin(i / 9.0) * std::cos(j / 11.0));
  const Field f("smooth", std::move(a));

  InterpOptions lin, cub;
  lin.method = InterpMethod::kLinear;
  cub.method = InterpMethod::kCubic;
  lin.eb = cub.eb = ErrorBound::relative(1e-4);
  SzStats sl, sc;
  interp_compress(f, lin, &sl);
  interp_compress(f, cub, &sc);
  EXPECT_GE(sc.compression_ratio, sl.compression_ratio * 0.95);
}

TEST(Interp, CorruptStreamThrows) {
  const Field f = wave_field(Shape{40, 40}, 3);
  auto stream = interp_compress(f, InterpOptions{});
  stream[stream.size() / 2] ^= 0x10;
  EXPECT_THROW(interp_decompress(stream), CorruptStream);
}

}  // namespace
}  // namespace xfc
