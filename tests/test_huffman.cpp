// Unit tests for canonical length-limited Huffman coding.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "encode/huffman.hpp"
#include "io/bytebuffer.hpp"

namespace xfc {
namespace {

double expected_bits(std::span<const std::uint64_t> freqs,
                     const std::vector<std::uint8_t>& lengths) {
  double bits = 0;
  for (std::size_t s = 0; s < freqs.size(); ++s)
    bits += static_cast<double>(freqs[s]) * lengths[s];
  return bits;
}

double entropy_bits(std::span<const std::uint64_t> freqs) {
  const double total = std::accumulate(freqs.begin(), freqs.end(), 0.0);
  double h = 0;
  for (auto f : freqs) {
    if (f == 0) continue;
    const double p = f / total;
    h -= p * std::log2(p);
  }
  return h * total;
}

bool kraft_ok(const std::vector<std::uint8_t>& lengths) {
  double sum = 0;
  for (auto l : lengths)
    if (l > 0) sum += std::ldexp(1.0, -static_cast<int>(l));
  return sum <= 1.0 + 1e-12;
}

TEST(HuffmanLengths, EmptyAndSingleSymbol) {
  std::vector<std::uint64_t> none(8, 0);
  auto l0 = huffman_code_lengths(none);
  for (auto l : l0) EXPECT_EQ(l, 0);

  std::vector<std::uint64_t> one(8, 0);
  one[3] = 42;
  auto l1 = huffman_code_lengths(one);
  EXPECT_EQ(l1[3], 1);
  for (std::size_t i = 0; i < 8; ++i)
    if (i != 3) EXPECT_EQ(l1[i], 0);
}

TEST(HuffmanLengths, TwoSymbolsGetOneBitEach) {
  std::vector<std::uint64_t> f{10, 0, 90};
  auto l = huffman_code_lengths(f);
  EXPECT_EQ(l[0], 1);
  EXPECT_EQ(l[2], 1);
}

TEST(HuffmanLengths, UniformPowerOfTwoIsFlat) {
  std::vector<std::uint64_t> f(16, 5);
  auto l = huffman_code_lengths(f);
  for (auto len : l) EXPECT_EQ(len, 4);
}

TEST(HuffmanLengths, SkewGetsShortCodeAndKraftHolds) {
  std::vector<std::uint64_t> f{1000, 10, 10, 10, 1};
  auto l = huffman_code_lengths(f);
  EXPECT_EQ(l[0], 1);  // dominant symbol
  EXPECT_TRUE(kraft_ok(l));
  // Optimality sanity: within one bit/symbol of entropy.
  const double total = 1031;
  EXPECT_LE(expected_bits(f, l), entropy_bits(f) + total);
}

TEST(HuffmanLengths, LengthLimitRespectedOnFibonacciFreqs) {
  // Fibonacci frequencies force maximal depth in unconstrained Huffman.
  std::vector<std::uint64_t> f;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    f.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  for (unsigned limit : {8u, 10u, 12u, 16u}) {
    auto l = huffman_code_lengths(f, limit);
    for (auto len : l) {
      EXPECT_GE(len, 1);
      EXPECT_LE(len, limit);
    }
    EXPECT_TRUE(kraft_ok(l));
  }
}

TEST(HuffmanLengths, LimitTooSmallThrows) {
  std::vector<std::uint64_t> f(16, 1);
  EXPECT_THROW(huffman_code_lengths(f, 3), InvalidArgument);  // 2^3 < 16
  EXPECT_NO_THROW(huffman_code_lengths(f, 4));
}

TEST(HuffmanLengths, PackageMergeIsOptimalOnSmallCases) {
  // Compare constrained cost against brute expectation: with limit equal to
  // the unconstrained depth, costs must match the unconstrained optimum.
  std::vector<std::uint64_t> f{5, 9, 12, 13, 16, 45};
  auto unconstrained = huffman_code_lengths(f, 32);
  unsigned depth = 0;
  for (auto l : unconstrained) depth = std::max<unsigned>(depth, l);
  auto limited = huffman_code_lengths(f, depth);
  EXPECT_EQ(expected_bits(f, unconstrained), expected_bits(f, limited));
}

struct CodecCase {
  std::size_t alphabet;
  double skew;  // zipf-ish exponent
};

class HuffmanCodecTest : public ::testing::TestWithParam<CodecCase> {};

TEST_P(HuffmanCodecTest, EncodeDecodeRoundtrip) {
  const auto [alphabet, skew] = GetParam();
  Rng rng(alphabet * 31 + static_cast<std::uint64_t>(skew * 10));

  std::vector<std::uint64_t> freqs(alphabet, 0);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 5000; ++i) {
    // Zipf-flavoured draw.
    const double u = rng.uniform();
    const auto s = static_cast<std::uint32_t>(
        static_cast<double>(alphabet) * std::pow(u, skew));
    const std::uint32_t sym = std::min<std::uint32_t>(
        s, static_cast<std::uint32_t>(alphabet - 1));
    symbols.push_back(sym);
    ++freqs[sym];
  }

  const auto code = HuffmanCode::from_frequencies(freqs);
  BitWriter bw;
  for (auto s : symbols) code.encode(bw, s);
  const auto bytes = bw.take();

  BitReader br(bytes);
  for (auto s : symbols) EXPECT_EQ(code.decode(br), s);
}

INSTANTIATE_TEST_SUITE_P(
    AlphabetsAndSkews, HuffmanCodecTest,
    ::testing::Values(CodecCase{2, 1.0}, CodecCase{3, 2.0}, CodecCase{16, 1.0},
                      CodecCase{64, 3.0}, CodecCase{256, 1.5},
                      CodecCase{1024, 4.0}, CodecCase{65537, 6.0}));

TEST(HuffmanCodec, EncodeAllMatchesPerSymbolEncode) {
  // The bulk emit path must produce exactly the bytes of symbol-at-a-time
  // encoding — the delta codec relies on this for stream stability.
  Rng rng(99);
  std::vector<std::uint64_t> freqs(300, 0);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 4000; ++i) {
    const auto s =
        static_cast<std::uint32_t>(rng.uniform_index(300) * rng.uniform());
    symbols.push_back(s);
    ++freqs[s];
  }
  const auto code = HuffmanCode::from_frequencies(freqs);

  BitWriter one;
  for (auto s : symbols) code.encode(one, s);
  BitWriter bulk;
  code.encode_all(bulk, symbols);
  EXPECT_EQ(bulk.take(), one.take());
}

TEST(HuffmanCodec, EncodeAllRejectsUncodedSymbol) {
  std::vector<std::uint64_t> freqs{5, 0, 5};
  const auto code = HuffmanCode::from_frequencies(freqs);
  BitWriter bw;
  const std::vector<std::uint32_t> bad{0, 1, 2};
  EXPECT_THROW(code.encode_all(bw, bad), InvalidArgument);
}

TEST(HuffmanCodec, SerializeRoundtripPreservesCodes) {
  std::vector<std::uint64_t> freqs{7, 1, 0, 3, 3, 0, 0, 19};
  const auto code = HuffmanCode::from_frequencies(freqs);

  ByteWriter w;
  code.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto restored = HuffmanCode::deserialize(r);

  EXPECT_EQ(restored.lengths(), code.lengths());

  // Cross encode/decode between the two instances.
  BitWriter bw;
  code.encode(bw, 7);
  code.encode(bw, 0);
  code.encode(bw, 3);
  const auto payload = bw.take();
  BitReader br(payload);
  EXPECT_EQ(restored.decode(br), 7u);
  EXPECT_EQ(restored.decode(br), 0u);
  EXPECT_EQ(restored.decode(br), 3u);
}

TEST(HuffmanCodec, EncodingUnknownSymbolThrows) {
  std::vector<std::uint64_t> freqs{5, 0, 5};
  const auto code = HuffmanCode::from_frequencies(freqs);
  BitWriter bw;
  EXPECT_THROW(code.encode(bw, 1), InvalidArgument);  // zero-frequency
  EXPECT_THROW(code.encode(bw, 9), InvalidArgument);  // out of alphabet
}

TEST(HuffmanCodec, KraftViolationRejectedAtBuild) {
  // Three codes of length 1 are impossible.
  EXPECT_THROW(HuffmanCode({1, 1, 1}), CorruptStream);
}

TEST(HuffmanCodec, DecodeGarbageThrowsOrTerminates) {
  std::vector<std::uint64_t> freqs{1, 1, 1};  // lengths {1,2,2}
  const auto code = HuffmanCode::from_frequencies(freqs);
  // All-ones stream decodes some symbols then hits end-of-stream.
  std::vector<std::uint8_t> ones(2, 0xFF);
  BitReader br(ones);
  EXPECT_THROW(
      {
        for (int i = 0; i < 100; ++i) code.decode(br);
      },
      CorruptStream);
}

TEST(HuffmanCodec, DeserializeRejectsBadRuns) {
  ByteWriter w;
  w.varint(4);  // alphabet 4
  w.u8(2);
  w.varint(10);  // run longer than alphabet
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(HuffmanCode::deserialize(r), CorruptStream);
}

TEST(HuffmanCodec, LongCodesBeyondRootTableRoundtrip) {
  // Fibonacci frequencies force code lengths far beyond the 11-bit root
  // decode table, exercising the slow decode path.
  std::vector<std::uint64_t> f;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 36; ++i) {
    f.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const auto code = HuffmanCode::from_frequencies(f);
  unsigned max_len = 0;
  for (auto l : code.lengths()) max_len = std::max<unsigned>(max_len, l);
  ASSERT_GT(max_len, 11u) << "test premise: codes longer than the root table";

  // Every symbol, including the rarest (longest codes), must round-trip.
  BitWriter bw;
  for (std::uint32_t s = 0; s < f.size(); ++s) code.encode(bw, s);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (std::uint32_t s = 0; s < f.size(); ++s) EXPECT_EQ(code.decode(br), s);
}

TEST(HuffmanCodec, LengthOfMatchesTableAndCost) {
  std::vector<std::uint64_t> f{100, 50, 25, 25};
  const auto code = HuffmanCode::from_frequencies(f);
  for (std::uint32_t s = 0; s < 4; ++s)
    EXPECT_EQ(code.length_of(s), code.lengths()[s]);
  // Most frequent symbol cannot have a longer code than any other.
  for (std::uint32_t s = 1; s < 4; ++s)
    EXPECT_LE(code.length_of(0), code.length_of(s));
}

TEST(HuffmanCodec, DecodeAtExactStreamEnd) {
  // A stream ending exactly on a code boundary must decode fully and then
  // refuse further reads.
  std::vector<std::uint64_t> f{1, 1, 1, 1};  // 2 bits each
  const auto code = HuffmanCode::from_frequencies(f);
  BitWriter bw;
  for (std::uint32_t s : {0u, 1u, 2u, 3u}) code.encode(bw, s);
  const auto bytes = bw.take();  // exactly one byte
  ASSERT_EQ(bytes.size(), 1u);
  BitReader br(bytes);
  for (std::uint32_t s : {0u, 1u, 2u, 3u}) EXPECT_EQ(code.decode(br), s);
  EXPECT_THROW(code.decode(br), CorruptStream);
}

TEST(HuffmanCodec, LargeAlphabetSparseUse) {
  // Mirrors the quantization-code regime: huge alphabet, few used symbols.
  std::vector<std::uint64_t> freqs(65537, 0);
  freqs[32768] = 100000;  // zero delta dominates
  freqs[32769] = 5000;
  freqs[32767] = 5000;
  freqs[40000] = 3;
  freqs[65536] = 10;  // escape
  const auto code = HuffmanCode::from_frequencies(freqs);
  EXPECT_LE(code.length_of(32768), 2u);

  BitWriter bw;
  for (std::uint32_t s : {32768u, 40000u, 65536u, 32767u}) code.encode(bw, s);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (std::uint32_t s : {32768u, 40000u, 65536u, 32767u})
    EXPECT_EQ(code.decode(br), s);
}

TEST(HuffmanCodec, PairDecodeMatchesScalarDecodeOnRandomCodebooks) {
  // The two-symbol root table must be an invisible optimisation: for any
  // codebook and any symbol stream, draining the stream through
  // decode_pair yields exactly the scalar decode() sequence.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t alphabet = 2 + rng.uniform_index(300);
    std::vector<std::uint64_t> freqs(alphabet, 0);
    const std::size_t used = 1 + rng.uniform_index(alphabet);
    for (std::size_t i = 0; i < used; ++i)
      freqs[rng.uniform_index(alphabet)] += 1 + rng.uniform_index(1000);
    std::vector<std::uint32_t> present;
    for (std::uint32_t sym = 0; sym < alphabet; ++sym)
      if (freqs[sym] > 0) present.push_back(sym);

    const auto code = HuffmanCode::from_frequencies(freqs);
    std::vector<std::uint32_t> symbols(200 + rng.uniform_index(500));
    for (auto& sym : symbols)
      sym = present[rng.uniform_index(present.size())];
    BitWriter bw;
    code.encode_all(bw, symbols);
    const auto bytes = bw.take();

    // Round-trip the serialize path too, so the decode-only (cached)
    // codebook build is the one under test.
    ByteWriter ser;
    code.serialize(ser);
    const auto ser_bytes = ser.take();
    ByteReader rd(ser_bytes);
    const auto cached = HuffmanCode::deserialize_cached(rd);

    BitReader scalar(bytes);
    BitReader paired(bytes);
    std::vector<std::uint32_t> got;
    std::uint32_t pending = 0;
    bool has_pending = false;
    while (got.size() < symbols.size()) {
      if (has_pending) {
        got.push_back(pending);
        has_pending = false;
        continue;
      }
      std::uint32_t a, b;
      if (cached->decode_pair(paired, a, b) == 2) {
        pending = b;
        has_pending = true;
      }
      got.push_back(a);
    }
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      ASSERT_EQ(got[i], symbols[i]) << "trial " << trial << " index " << i;
      ASSERT_EQ(code.decode(scalar), symbols[i]);
    }
  }
}

TEST(HuffmanCodec, PairDecodeHonorsFirstLimit) {
  // With first_limit = 1 only symbol 0 may lead a pair; streams starting
  // with any other symbol must decode exactly one symbol per call. The
  // pair table only exists on decode-side codebooks, so the encoder's
  // table must round-trip through serialize/deserialize_cached first.
  std::vector<std::uint64_t> freqs{40, 30, 20, 10};
  const auto code = HuffmanCode::from_frequencies(freqs);
  ByteWriter ser;
  code.serialize(ser);
  const auto ser_bytes = ser.take();
  ByteReader rd(ser_bytes);
  const auto decoder = HuffmanCode::deserialize_cached(rd);

  const std::vector<std::uint32_t> symbols{3, 0, 2, 0, 0, 1};
  BitWriter bw;
  code.encode_all(bw, symbols);
  const auto bytes = bw.take();
  BitReader br(bytes);
  std::vector<std::uint32_t> got;
  std::size_t pairs = 0;
  while (got.size() < symbols.size()) {
    std::uint32_t a, b;
    const unsigned n = decoder->decode_pair(br, a, b, /*first_limit=*/1);
    got.push_back(a);
    if (n == 2) {
      EXPECT_EQ(a, 0u) << "a pair led by a symbol >= first_limit";
      got.push_back(b);
      ++pairs;
    }
  }
  EXPECT_EQ(got, symbols);
  // The guard must restrict, not disable: the two 0-led positions (index
  // 1 and 3) both fit the root window with their followers, so pairs DO
  // form here — a vacuous always-single decode fails this.
  EXPECT_GT(pairs, 0u);
}

TEST(HuffmanCodec, DeserializeCachedReturnsEquivalentCodebooks) {
  // Same serialized bytes -> the cache may share one table; different
  // bytes -> it must not. Both cases must decode correctly.
  std::vector<std::uint64_t> fa{10, 20, 30, 40};
  std::vector<std::uint64_t> fb{40, 30, 20, 10, 5};
  const auto ca = HuffmanCode::from_frequencies(fa);
  const auto cb = HuffmanCode::from_frequencies(fb);
  ByteWriter wa, wb;
  ca.serialize(wa);
  cb.serialize(wb);
  const auto ba = wa.take();
  const auto bb = wb.take();

  ByteReader r1(ba), r2(ba), r3(bb);
  const auto d1 = HuffmanCode::deserialize_cached(r1);
  const auto d2 = HuffmanCode::deserialize_cached(r2);
  const auto d3 = HuffmanCode::deserialize_cached(r3);
  EXPECT_EQ(d1->lengths(), ca.lengths());
  EXPECT_EQ(d2->lengths(), ca.lengths());
  EXPECT_EQ(d3->lengths(), cb.lengths());

  BitWriter bw;
  for (std::uint32_t sym : {0u, 3u, 1u}) ca.encode(bw, sym);
  const auto bytes = bw.take();
  BitReader br(bytes);
  for (std::uint32_t sym : {0u, 3u, 1u}) EXPECT_EQ(d2->decode(br), sym);
}

}  // namespace
}  // namespace xfc
