// Cross-module integration tests: full pipelines on each synthetic dataset,
// codec dispatch, baseline-vs-cross-field behaviour at small scale.

#include <gtest/gtest.h>

#include "crossfield/crossfield.hpp"
#include "crossfield/multifield.hpp"
#include "data/dataset.hpp"
#include "metrics/metrics.hpp"
#include "sz/compressor.hpp"
#include "sz/interpolation.hpp"
#include "zfp/zfp_codec.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

CfnnTrainOptions quick_train() {
  CfnnTrainOptions t;
  t.epochs = 8;
  t.patches_per_epoch = 32;
  t.patch = 24;
  t.batch = 8;
  return t;
}

struct KindCase {
  DatasetKind kind;
  Shape dims;
};

class DatasetPipeline : public ::testing::TestWithParam<int> {};

KindCase case_for(int i) {
  switch (i) {
    case 0: return {DatasetKind::kScale, Shape{6, 64, 64}};
    case 1: return {DatasetKind::kCesm, Shape{96, 128}};
    default: return {DatasetKind::kHurricane, Shape{8, 64, 64}};
  }
}

TEST_P(DatasetPipeline, BaselineRoundtripsEveryField) {
  const auto [kind, dims] = case_for(GetParam());
  const auto ds = make_dataset(kind, dims, 21);
  SzOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  for (const Field& f : ds.fields) {
    const auto stream = sz_compress(f, opt);
    const Field out = sz_decompress(stream);
    const double abs_eb = opt.eb.absolute_for(f.value_range());
    EXPECT_LE(max_abs_error(f.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, f))
        << ds.name << "/" << f.name();
    EXPECT_GT(psnr(f, out), 40.0) << ds.name << "/" << f.name();
  }
}

TEST_P(DatasetPipeline, CrossFieldRoundtripsEveryTable3Target) {
  const auto [kind, dims] = case_for(GetParam());
  const auto ds = make_dataset(kind, dims, 22);
  for (const auto& spec : table3_targets(kind, false)) {
    const Field* target = ds.find(spec.target);
    ASSERT_NE(target, nullptr);
    std::vector<const Field*> anchors;
    for (const auto& a : spec.anchors) anchors.push_back(ds.find(a));

    CfnnConfig small{8, 4, 3};
    const CfnnModel model =
        train_cross_field_model(*target, anchors, small, quick_train());

    CrossFieldOptions opt;
    opt.eb = ErrorBound::relative(1e-3);
    SzStats stats;
    const auto stream =
        cross_field_compress(*target, anchors, model, opt, &stats);
    const Field out = cross_field_decompress(stream, anchors);

    const double abs_eb = opt.eb.absolute_for(target->value_range());
    EXPECT_LE(max_abs_error(target->array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, *target))
        << ds.name << "/" << spec.target;
    EXPECT_GT(stats.compression_ratio, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetPipeline,
                         ::testing::Values(0, 1, 2));

TEST(Integration, AllCodecsProduceDistinctDispatchableStreams) {
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{64, 64}, 23);
  const Field& f = ds.fields[0];

  const auto sz = sz_compress(f, SzOptions{});
  const auto zfp = zfp_compress(f, ZfpOptions{.tolerance = 1e-3});
  const auto interp = interp_compress(f, InterpOptions{});

  // Each decoder accepts its own stream and rejects the others.
  EXPECT_NO_THROW(sz_decompress(sz));
  EXPECT_THROW(sz_decompress(zfp), CorruptStream);
  EXPECT_THROW(zfp_decompress(interp), CorruptStream);
  EXPECT_THROW(interp_decompress(sz), CorruptStream);
  EXPECT_NO_THROW(zfp_decompress(zfp));
  EXPECT_NO_THROW(interp_decompress(interp));
}

TEST(Integration, TrainedCrossFieldBeatsUntrainedOnCorrelatedData) {
  // On strongly cross-correlated fields, a trained CFNN should produce
  // fewer delta bits than a random one. Compare compressed sizes.
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{128, 160}, 24);
  const auto spec = table3_targets(DatasetKind::kCesm, false)[1];  // LWCF
  const Field* target = ds.find(spec.target);
  std::vector<const Field*> anchors;
  for (const auto& a : spec.anchors) anchors.push_back(ds.find(a));

  CfnnConfig small{16, 4, 3};
  const CfnnModel trained =
      train_cross_field_model(*target, anchors, small, quick_train());
  const CfnnModel untrained(anchors.size() * 2, 2, small, 12345);

  CrossFieldOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  SzStats st, su;
  cross_field_compress(*target, anchors, trained, opt, &st);
  cross_field_compress(*target, anchors, untrained, opt, &su);
  EXPECT_LT(st.compressed_bytes, su.compressed_bytes);
}

TEST(Integration, HybridWeightsFavourInformativePredictors) {
  // LWCF is nearly FLUTC - FLUT: cross-field directions should carry
  // substantial weight after training.
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{128, 160}, 25);
  const auto spec = table3_targets(DatasetKind::kCesm, false)[1];
  const Field* target = ds.find(spec.target);
  std::vector<const Field*> anchors;
  for (const auto& a : spec.anchors) anchors.push_back(ds.find(a));

  const CfnnModel model = train_cross_field_model(
      *target, anchors, CfnnConfig{16, 4, 3}, quick_train());
  const auto analysis =
      cross_field_analyze(*target, anchors, model, CrossFieldOptions{});

  // All 3 candidate weights exist and are finite; Lorenzo weight is not
  // everything (some cross-field contribution).
  const auto& w = analysis.hybrid.weights();
  ASSERT_EQ(w.size(), 3u);
  double cross = std::abs(w[0]) + std::abs(w[1]);
  EXPECT_GT(cross, 0.02);
}

TEST(Integration, MultiFieldOnRealisticDatasetRoundtrips) {
  const auto ds = make_dataset(DatasetKind::kHurricane, Shape{6, 48, 48}, 26);
  MultiFieldCompressor mfc;
  for (const Field& f : ds.fields) mfc.add_field(f);
  const auto spec = table3_targets(DatasetKind::kHurricane, false)[0];
  AnchorConfig cfg;
  cfg.anchors = spec.anchors;
  cfg.cfnn = CfnnConfig{8, 4, 3};
  cfg.train = quick_train();
  mfc.configure_target(spec.target, cfg);

  const auto eb = ErrorBound::relative(2e-3);
  const auto compressed = mfc.compress_all(eb);
  ASSERT_EQ(compressed.size(), ds.fields.size());
  const auto fields = MultiFieldCompressor::decompress_all(compressed);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const Field* orig = mfc.find(compressed[i].name);
    const double abs_eb = eb.absolute_for(orig->value_range());
    EXPECT_LE(max_abs_error(orig->array().span(), fields[i].array().span()),
              test::bound_tolerance(abs_eb, *orig));
  }
}

TEST(Integration, StatsConsistentAcrossCodecs) {
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{96, 96}, 27);
  const Field& f = ds.fields[4];  // FLNT
  SzStats a, b;
  const auto s1 = sz_compress(f, SzOptions{}, &a);
  const auto s2 = interp_compress(f, InterpOptions{}, &b);
  EXPECT_EQ(a.original_bytes, b.original_bytes);
  EXPECT_EQ(a.compressed_bytes, s1.size());
  EXPECT_EQ(b.compressed_bytes, s2.size());
}

}  // namespace
}  // namespace xfc
