// Chaos suite: deterministic fault injection against every layer of the
// fault-tolerance stack. Seeded sweeps drive archive reads through faulty
// byte sources (the outcome must be bit-exact bytes or a typed XfcError —
// never wrong bytes, never a crash); targeted corruption exercises degraded
// reads, scrub, repair and the tile cache's negative caching; loopback
// socket abuse (mid-response death, slow loris, drain under load) hardens
// the XFS HTTP layer; and torn writes prove the writer never publishes a
// truncated archive.
//
// Sweep breadth is tunable: XFC_CHAOS_SEEDS overrides the default 200
// seeds (sanitizer runs use a smaller budget; the nightly label runs more).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <sys/stat.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_appender.hpp"
#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/repair.hpp"
#include "archive/tile.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"
#include "crossfield/crossfield.hpp"
#include "io/fault.hpp"
#include "io/stream.hpp"
#include "obs/metrics.hpp"
#include "server/http.hpp"
#include "server/service.hpp"
#include "server/tile_cache.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

using server::ArchiveService;
using server::HttpClient;
using server::HttpClientConfig;
using server::HttpConfig;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::ServiceConfig;
using server::TileCache;
using server::TileCacheConfig;

int chaos_seeds() {
  if (const char* env = std::getenv("XFC_CHAOS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// Shared fixture archive: 48x40, 16x16 tiles (3x3 ragged grid per field).
///   rho   kSz          (anchor, reconstruction kept)
///   zeta  kZfp
///   vx    kCrossField  anchored on rho
struct ChaosArchive {
  std::vector<std::uint8_t> bytes;
  Field rho_ref, zeta_ref, vx_ref;  // strict decodes of the clean archive
};

const ChaosArchive& chaos_archive() {
  static const ChaosArchive a = [] {
    const Shape shape{48, 40};
    Rng rng(2024);
    Field rho("rho", F32Array(shape));
    Field zeta("zeta", F32Array(shape));
    Field vx("vx", F32Array(shape));
    for (std::size_t i = 0; i < rho.size(); ++i) {
      const double x = static_cast<double>(i % 40) / 6.0;
      const double y = static_cast<double>(i / 40) / 9.0;
      const double base = std::sin(x) * std::cos(y) * 15.0;
      rho.array()[i] = static_cast<float>(base + rng.normal(0, 0.05));
      zeta.array()[i] =
          static_cast<float>(std::cos(x * 0.7) * 8.0 + rng.normal(0, 0.05));
      vx.array()[i] = static_cast<float>(0.8 * base + rng.normal(0, 0.05));
    }
    CfnnTrainOptions train;
    train.epochs = 4;
    train.patches_per_epoch = 16;
    train.patch = 16;
    train.batch = 8;
    const CfnnModel model =
        train_cross_field_model(vx, {&rho}, CfnnConfig{8, 4, 3}, train);

    VectorSink sink;
    ArchiveWriter writer(sink);
    ArchiveFieldOptions opts;
    opts.eb = ErrorBound::relative(1e-3);
    opts.tile = Shape{16, 16};
    opts.keep_reconstruction = true;
    writer.add_field(rho, opts);
    ArchiveFieldOptions zopts = opts;
    zopts.codec = CodecId::kZfp;
    zopts.keep_reconstruction = false;
    writer.add_field(zeta, zopts);
    writer.add_cross_field(vx, {"rho"}, model, opts);
    writer.finish();

    ChaosArchive out;
    out.bytes = sink.take();
    const ArchiveReader reader = ArchiveReader::open_memory(out.bytes);
    out.rho_ref = reader.read_field("rho");
    out.zeta_ref = reader.read_field("zeta");
    out.vx_ref = reader.read_field("vx");
    return out;
  }();
  return a;
}

/// Flips one bit in the middle of the named tile's body.
std::vector<std::uint8_t> with_corrupt_tile(std::vector<std::uint8_t> bytes,
                                            const std::string& field,
                                            std::size_t ordinal,
                                            std::uint8_t mask = 0x10) {
  const ArchiveReader reader = ArchiveReader::open_memory(bytes);
  const ArchiveFieldInfo* info = reader.find(field);
  EXPECT_NE(info, nullptr);
  const ArchiveTileInfo& t = info->tiles[ordinal];
  bytes[t.offset + t.size / 2] ^= mask;
  return bytes;
}

bool in_box(const TileBox& box, std::size_t i, std::size_t j) {
  return i >= box.lo[0] && i < box.lo[0] + box.extents[0] && j >= box.lo[1] &&
         j < box.lo[1] + box.extents[1];
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

std::size_t file_size(const std::string& path) {
  struct ::stat st {};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<std::size_t>(st.st_size);
}

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::uint8_t> out(file_size(path));
  if (!out.empty()) EXPECT_EQ(std::fread(out.data(), 1, out.size(), f), out.size());
  std::fclose(f);
  return out;
}

/// Three sealed epochs over plain codecs (no CFNN — kept tiny and fast so
/// the power-cut sweeps can afford every single byte length / call index).
///   epoch 0: a (kSz)    epoch 1: +b (kZfp)    epoch 2: a replaced
struct EpochArchive {
  std::vector<std::uint8_t> bytes;    // full 3-epoch stream
  std::array<std::size_t, 3> sealed;  // stream size after each seal
  Field a0, b1, a2;                   // strict decodes per sealed state
  ArchiveFieldOptions opts;           // the options every field was coded with
};

const EpochArchive& epoch_archive() {
  static const EpochArchive e = [] {
    const Shape shape{24, 20};
    const auto make = [&](const char* name, std::uint64_t seed, double amp) {
      Rng rng(seed);
      F32Array arr(shape);
      for (std::size_t i = 0; i < arr.size(); ++i) {
        const double x = static_cast<double>(i % 20) / 5.0;
        const double y = static_cast<double>(i / 20) / 7.0;
        arr[i] = static_cast<float>(std::sin(x) * std::cos(y) * amp +
                                    rng.normal(0, 0.02));
      }
      return Field(name, std::move(arr));
    };
    EpochArchive out;
    out.opts.eb = ErrorBound::relative(1e-3);
    out.opts.tile = Shape{16, 16};

    VectorSink seed_sink;
    ArchiveWriter writer(seed_sink);
    writer.add_field(make("a", 11, 12.0), out.opts);
    writer.finish();
    std::vector<std::uint8_t> bytes = seed_sink.take();
    out.sealed[0] = bytes.size();

    {
      const ArchiveReader r = ArchiveReader::open_memory(bytes);
      VectorSink sink(bytes);  // copy-seeded: continues past the seal
      ArchiveAppender appender(sink, r);
      ArchiveFieldOptions zopts = out.opts;
      zopts.codec = CodecId::kZfp;
      appender.append_field(make("b", 12, 7.0), zopts);
      appender.finish_epoch();
      std::vector<std::uint8_t> next = sink.take();
      bytes = std::move(next);
    }
    out.sealed[1] = bytes.size();
    {
      const ArchiveReader r = ArchiveReader::open_memory(bytes);
      VectorSink sink(bytes);
      ArchiveAppender appender(sink, r);
      appender.replace_field(make("a", 13, 20.0), out.opts);
      appender.finish_epoch();
      std::vector<std::uint8_t> next = sink.take();
      bytes = std::move(next);
    }
    out.sealed[2] = bytes.size();
    out.bytes = std::move(bytes);

    const std::span<const std::uint8_t> all(out.bytes);
    out.a0 =
        ArchiveReader::open_memory(all.first(out.sealed[0])).read_field("a");
    out.b1 =
        ArchiveReader::open_memory(all.first(out.sealed[1])).read_field("b");
    out.a2 = ArchiveReader::open_memory(all).read_field("a");
    return out;
  }();
  return e;
}

// -- Fault injector determinism ---------------------------------------------

TEST(Chaos, FaultInjectorIsDeterministic) {
  const ChaosArchive& a = chaos_archive();

  // Same seed, same single-threaded call sequence -> identical outcomes:
  // every returned byte, every thrown error, every counter.
  auto run = [&](std::uint64_t seed, std::vector<std::uint8_t>& digest,
                 FaultCounters& counters) {
    FaultPlan plan;
    plan.seed = seed;
    plan.error_rate = 0.1;
    plan.short_rate = 0.1;
    plan.flip_rate = 0.2;
    plan.corrupt_offsets = {100, 5000};
    plan.fail_calls = {3};
    auto injector = std::make_shared<FaultInjector>(plan);
    FaultyByteSource src(std::make_unique<MemorySource>(
                             std::span<const std::uint8_t>(a.bytes)),
                         injector);
    for (std::size_t i = 0; i < 64; ++i) {
      const std::size_t off = (i * 997) % (a.bytes.size() - 128);
      try {
        const auto chunk = src.read_vec(off, 128);
        digest.insert(digest.end(), chunk.begin(), chunk.end());
      } catch (const IoError&) {
        digest.push_back(0xEE);  // error marker keeps sequences comparable
      }
    }
    counters = injector->counters();
  };

  std::vector<std::uint8_t> d1, d2;
  FaultCounters c1, c2;
  run(7, d1, c1);
  run(7, d2, c2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(c1.calls, c2.calls);
  EXPECT_EQ(c1.injected_errors, c2.injected_errors);
  EXPECT_EQ(c1.short_ops, c2.short_ops);
  EXPECT_EQ(c1.bit_flips, c2.bit_flips);
  EXPECT_GE(c1.injected_errors, 1u);  // fail_calls={3} always fires

  // Targeted corruption alone: exactly the listed offsets differ, the same
  // way, no matter the read pattern.
  FaultPlan plan;
  plan.seed = 7;
  plan.corrupt_offsets = {100, 5000};
  auto injector = std::make_shared<FaultInjector>(plan);
  FaultyByteSource src(
      std::make_unique<MemorySource>(std::span<const std::uint8_t>(a.bytes)),
      injector);
  const auto whole = src.read_vec(0, a.bytes.size());
  const auto again = src.read_vec(0, a.bytes.size());
  EXPECT_EQ(whole, again);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    if (i == 100 || i == 5000)
      EXPECT_NE(whole[i], a.bytes[i]) << "offset " << i;
    else
      ASSERT_EQ(whole[i], a.bytes[i]) << "offset " << i;
  }
}

// -- Seeded chaos sweep ------------------------------------------------------

// The core robustness pin: across N seeds of probabilistic I/O faults, every
// archive operation either returns bit-exact bytes, reports contained
// per-tile errors (degraded reads), or throws a typed XfcError. Wrong bytes
// or an escape of any other exception type fails the test; a crash or hang
// fails the run.
TEST(Chaos, SeededReadSweep) {
  const ChaosArchive& a = chaos_archive();
  const ArchiveReader clean = ArchiveReader::open_memory(a.bytes);
  const ArchiveFieldInfo* vx_info = clean.find("vx");
  const TileGrid grid(vx_info->shape, vx_info->tile);
  const int n_seeds = chaos_seeds();

  // File-backed, like production: faults inject between the reader and a
  // real FileSource/RandomAccessFile.
  // Per-process name: test_chaos and test_chaos_mt4 may run concurrently
  // under `ctest -j`, and FileSink's temp+rename commit must not race a
  // sibling process on the same path.
  const std::string path = ::testing::TempDir() + "xfc_chaos_sweep." +
                           std::to_string(::getpid()) + ".xfa";
  {
    FileSink sink(path);
    sink.append(a.bytes);
    sink.commit();
  }

  int clean_reads = 0, typed_failures = 0, degraded_reads = 0;
  for (int seed = 0; seed < n_seeds; ++seed) {
    FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(seed) * 0x9E37u + 1;
    plan.error_rate = 0.02;
    plan.short_rate = 0.02;
    plan.flip_rate = 0.03;
    plan.delay_rate = 0.01;
    plan.delay_us = 50;
    auto injector = std::make_shared<FaultInjector>(plan);
    try {
      ArchiveReader reader(std::make_unique<FaultyByteSource>(
          std::make_unique<FileSource>(path), injector));

      // Strict reads (tile-parallel internally): bit-exact or typed
      // failure, nothing in between.
      try {
        const Field rho = reader.read_field("rho");
        ASSERT_EQ(rho.array(), a.rho_ref.array()) << "seed " << seed;
        ++clean_reads;
      } catch (const XfcError&) {
        ++typed_failures;
      }
      try {
        const std::size_t lo[] = {8, 8}, hi[] = {40, 32};
        const Field crop = reader.read_region("zeta", lo, hi);
        for (std::size_t i = 0; i < 32; ++i)
          for (std::size_t j = 0; j < 24; ++j)
            ASSERT_EQ(crop.array()(i, j), a.zeta_ref.array()(8 + i, 8 + j))
                << "seed " << seed;
      } catch (const XfcError&) {
        ++typed_failures;
      }
      try {
        const std::size_t t = static_cast<std::size_t>(seed) % 9;
        const Field tile = reader.read_tile("vx", t);
        const TileBox box = grid.box(t);
        for (std::size_t i = 0; i < box.extents[0]; ++i)
          for (std::size_t j = 0; j < box.extents[1]; ++j)
            ASSERT_EQ(tile.array()(i, j),
                      a.vx_ref.array()(box.lo[0] + i, box.lo[1] + j))
                << "seed " << seed << " tile " << t;
      } catch (const XfcError&) {
        ++typed_failures;
      }

      // Degraded read: device faults are contained into the report, and
      // every value outside the failed tiles' boxes is still bit-exact.
      ArchiveReadReport report;
      const Field vx = reader.read_field_partial("vx", report);
      if (!report.complete()) ++degraded_reads;
      std::vector<TileBox> failed;
      failed.reserve(report.errors.size());
      for (const ArchiveTileError& e : report.errors)
        failed.push_back(grid.box(e.ordinal));
      for (std::size_t i = 0; i < 48; ++i)
        for (std::size_t j = 0; j < 40; ++j) {
          bool masked = false;
          for (const TileBox& b : failed) masked = masked || in_box(b, i, j);
          if (!masked)
            ASSERT_EQ(vx.array()(i, j), a.vx_ref.array()(i, j))
                << "seed " << seed << " at (" << i << "," << j << ")";
        }

      // Scrub never throws for per-tile damage and its books balance.
      if (seed % 8 == 0) {
        const ArchiveScrubReport scrub = reader.scrub();
        ASSERT_EQ(scrub.tiles_total, 27u);
        ASSERT_EQ(scrub.tiles_ok + scrub.errors.size(), scrub.tiles_total);
      }
    } catch (const XfcError&) {
      ++typed_failures;  // faults during open/parse are typed too
    }
  }

  // The sweep must have exercised both the happy path and the fault paths
  // (deterministic per seed set, so this cannot flake once it passes).
  EXPECT_GT(clean_reads, 0);
  EXPECT_GT(typed_failures + degraded_reads, 0);
  std::remove(path.c_str());
}

// -- Degraded reads ----------------------------------------------------------

TEST(Chaos, DegradedReadContainsSingleTileFailure) {
  const ChaosArchive& a = chaos_archive();
  const std::size_t bad = 4;
  const auto damaged = with_corrupt_tile(a.bytes, "rho", bad);
  const ArchiveReader reader = ArchiveReader::open_memory(damaged);
  const ArchiveFieldInfo* rho = reader.find("rho");

  // Strict read refuses; degraded read contains.
  EXPECT_THROW(reader.read_field("rho"), CorruptStream);

  ArchiveReadReport report;
  const Field out = reader.read_field_partial("rho", report);
  EXPECT_EQ(report.tiles_total, 9u);
  EXPECT_EQ(report.tiles_ok, 8u);
  ASSERT_EQ(report.errors.size(), 1u);
  EXPECT_EQ(report.errors[0].field, "rho");
  EXPECT_EQ(report.errors[0].ordinal, bad);
  EXPECT_EQ(report.errors[0].offset, rho->tiles[bad].offset);
  EXPECT_FALSE(report.errors[0].message.empty());

  const TileGrid grid(rho->shape, rho->tile);
  const TileBox box = grid.box(bad);
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 40; ++j) {
      if (in_box(box, i, j))
        ASSERT_EQ(out.array()(i, j), 0.0f);  // kZero fill
      else
        ASSERT_EQ(out.array()(i, j), a.rho_ref.array()(i, j));
    }

  // kNan poisons the hole instead.
  ArchiveReadReport nan_report;
  const Field poisoned =
      reader.read_field_partial("rho", nan_report, TileFillPolicy::kNan);
  EXPECT_TRUE(std::isnan(poisoned.array()(box.lo[0], box.lo[1])));
  EXPECT_FALSE(std::isnan(poisoned.array()(0, 0)));

  // Region reads away from the damage still succeed strictly.
  const std::size_t lo[] = {0, 0}, hi[] = {16, 16};
  const Field corner = reader.read_region("rho", lo, hi);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      ASSERT_EQ(corner.array()(i, j), a.rho_ref.array()(i, j));
}

TEST(Chaos, CrossFieldAnchorLossDegradesTarget) {
  const ChaosArchive& a = chaos_archive();
  // Damage an *anchor* tile only: vx's own bytes are intact, but its tile 0
  // must still be failed — decoding a target against filled anchor data
  // would be silently wrong, and degraded output is never wrong.
  const auto damaged = with_corrupt_tile(a.bytes, "rho", 0);
  const ArchiveReader reader = ArchiveReader::open_memory(damaged);

  ArchiveReadReport report;
  const Field vx = reader.read_field_partial("vx", report);
  bool saw_rho = false, saw_vx = false;
  for (const ArchiveTileError& e : report.errors) {
    if (e.field == "rho" && e.ordinal == 0) saw_rho = true;
    if (e.field == "vx" && e.ordinal == 0) {
      saw_vx = true;
      EXPECT_NE(e.message.find("anchor"), std::string::npos) << e.message;
    }
  }
  EXPECT_TRUE(saw_rho);
  EXPECT_TRUE(saw_vx);
  EXPECT_EQ(report.errors.size(), 2u);

  const ArchiveFieldInfo* vx_info = reader.find("vx");
  const TileGrid grid(vx_info->shape, vx_info->tile);
  const TileBox box = grid.box(0);
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 40; ++j) {
      if (in_box(box, i, j))
        ASSERT_EQ(vx.array()(i, j), 0.0f);
      else
        ASSERT_EQ(vx.array()(i, j), a.vx_ref.array()(i, j));
    }

  // A strict region read whose anchor coverage avoids the damage works.
  const std::size_t lo[] = {16, 16}, hi[] = {48, 40};
  const Field away = reader.read_region("vx", lo, hi);
  for (std::size_t i = 0; i < 32; ++i)
    for (std::size_t j = 0; j < 24; ++j)
      ASSERT_EQ(away.array()(i, j), a.vx_ref.array()(16 + i, 16 + j));
}

// -- Scrub and repair --------------------------------------------------------

TEST(Chaos, ScrubFlagsEveryCorruption) {
  const ChaosArchive& a = chaos_archive();

  const ArchiveScrubReport clean = ArchiveReader::open_memory(a.bytes).scrub();
  EXPECT_TRUE(clean.clean());
  EXPECT_EQ(clean.tiles_total, 27u);
  EXPECT_EQ(clean.tiles_ok, 27u);

  const std::set<std::pair<std::string, std::size_t>> damage = {
      {"rho", 1}, {"rho", 7}, {"zeta", 3}, {"zeta", 8}, {"vx", 5}};
  std::vector<std::uint8_t> bytes = a.bytes;
  for (const auto& [field, ordinal] : damage)
    bytes = with_corrupt_tile(std::move(bytes), field, ordinal);

  const ArchiveScrubReport report =
      ArchiveReader::open_memory(bytes).scrub();
  EXPECT_EQ(report.tiles_total, 27u);
  EXPECT_EQ(report.tiles_ok, 22u);
  std::set<std::pair<std::string, std::size_t>> flagged;
  for (const ArchiveTileError& e : report.errors) {
    flagged.insert({e.field, e.ordinal});
    EXPECT_FALSE(e.message.empty());
  }
  EXPECT_EQ(flagged, damage);  // 100% of corruptions, no false positives
}

TEST(Chaos, RepairSalvagesIntactTilesAndDropsOrphanedTargets) {
  const ChaosArchive& a = chaos_archive();
  // Damage one rho tile and one zeta tile. rho/zeta are patchable; vx's
  // anchor closure (rho) is damaged, so vx must be dropped, not guessed at.
  auto damaged = with_corrupt_tile(a.bytes, "rho", 4);
  damaged = with_corrupt_tile(std::move(damaged), "zeta", 2);
  const ArchiveReader in = ArchiveReader::open_memory(damaged);

  VectorSink sink;
  const RepairReport report = archive_repair(in, sink);
  EXPECT_EQ(report.fields_dropped, 1u);
  EXPECT_EQ(report.tiles_patched, 2u);
  EXPECT_EQ(report.tiles_salvaged, 16u);  // 8 rho + 8 zeta, verbatim
  ASSERT_EQ(report.fields.size(), 3u);
  for (const RepairFieldOutcome& f : report.fields) {
    if (f.name == "rho" || f.name == "zeta") {
      EXPECT_EQ(f.action, RepairFieldOutcome::Action::kPatched);
      ASSERT_EQ(f.patched_tiles.size(), 1u);
      EXPECT_EQ(f.patched_tiles[0], f.name == "rho" ? 4u : 2u);
      EXPECT_EQ(f.tiles_salvaged, 8u);
    } else {
      EXPECT_EQ(f.name, "vx");
      EXPECT_EQ(f.action, RepairFieldOutcome::Action::kDropped);
      EXPECT_FALSE(f.reason.empty());
    }
  }

  const auto repaired_bytes = sink.take();
  const ArchiveReader repaired = ArchiveReader::open_memory(repaired_bytes);
  EXPECT_EQ(repaired.fields().size(), 2u);
  EXPECT_TRUE(repaired.scrub().clean());

  // Every salvaged tile is byte-for-byte the original body.
  const ArchiveReader clean = ArchiveReader::open_memory(a.bytes);
  const ArchiveFieldInfo* r_rho = repaired.find("rho");
  const ArchiveFieldInfo* c_rho = clean.find("rho");
  ASSERT_NE(r_rho, nullptr);
  for (std::size_t t = 0; t < 9; ++t) {
    if (t == 4) continue;
    EXPECT_EQ(repaired.read_tile_bytes(*r_rho, t),
              clean.read_tile_bytes(*c_rho, t))
        << "tile " << t;
    EXPECT_EQ(r_rho->tiles[t].crc, c_rho->tiles[t].crc);
  }

  // Decode: exact outside the patched tile, near-zero fill inside it.
  const Field rr = repaired.read_field("rho");
  const TileGrid grid(r_rho->shape, r_rho->tile);
  const TileBox hole = grid.box(4);
  const double fill_tol = c_rho->abs_eb * 1.01 + 1e-6;
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 40; ++j) {
      if (in_box(hole, i, j))
        ASSERT_LE(std::abs(static_cast<double>(rr.array()(i, j))), fill_tol);
      else
        ASSERT_EQ(rr.array()(i, j), a.rho_ref.array()(i, j));
    }

  // A target whose *own* tile is damaged is dropped too (cross-field tiles
  // cannot be fill-encoded), while its intact anchor survives verbatim.
  const auto own = with_corrupt_tile(a.bytes, "vx", 3);
  VectorSink sink2;
  const RepairReport rep2 =
      archive_repair(ArchiveReader::open_memory(own), sink2);
  EXPECT_EQ(rep2.fields_dropped, 1u);
  EXPECT_EQ(rep2.tiles_patched, 0u);
  EXPECT_EQ(rep2.tiles_salvaged, 18u);  // rho + zeta fully verbatim
}

TEST(Chaos, RepairOfCleanArchiveIsVerbatim) {
  const ChaosArchive& a = chaos_archive();
  VectorSink sink;
  const RepairReport report =
      archive_repair(ArchiveReader::open_memory(a.bytes), sink);
  EXPECT_EQ(report.fields_dropped, 0u);
  EXPECT_EQ(report.tiles_patched, 0u);
  EXPECT_EQ(report.tiles_salvaged, 27u);
  for (const RepairFieldOutcome& f : report.fields)
    EXPECT_EQ(f.action, RepairFieldOutcome::Action::kIntact);

  const auto repaired_bytes = sink.take();
  const ArchiveReader repaired = ArchiveReader::open_memory(repaired_bytes);
  EXPECT_EQ(repaired.fields().size(), 3u);
  const Field vx = repaired.read_field("vx");  // anchors wired up correctly
  ASSERT_EQ(vx.array(), a.vx_ref.array());
}

// -- Torn writes -------------------------------------------------------------

TEST(Chaos, TornWriteNeverPublishesAnArchive) {
  const ChaosArchive& a = chaos_archive();
  // Per-process name, same reason as the sweep test above.
  const std::string path = ::testing::TempDir() + "xfc_chaos_torn." +
                           std::to_string(::getpid()) + ".xfa";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  {
    FileSink file(path);
    FaultPlan plan;
    plan.fail_after_bytes = 512;  // disk "fills up" mid-write
    auto injector = std::make_shared<FaultInjector>(plan);
    FaultyByteSink sink(file, injector);
    ArchiveWriter writer(sink);
    ArchiveFieldOptions opts;
    opts.eb = ErrorBound::relative(1e-3);
    opts.tile = Shape{16, 16};
    EXPECT_THROW(
        {
          writer.add_field(a.rho_ref, opts);
          writer.add_field(a.zeta_ref, opts);
          writer.finish();
        },
        IoError);
    EXPECT_GE(injector->counters().short_ops, 1u);
  }
  // The uncommitted sink removed its temp file; the final name never
  // existed, so a monitoring `open_file` cannot see a truncated archive.
  EXPECT_FALSE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));

  // The clean path publishes atomically and leaves no temp behind.
  {
    FileSink file(path);
    ArchiveWriter writer(file);
    ArchiveFieldOptions opts;
    opts.eb = ErrorBound::relative(1e-3);
    opts.tile = Shape{16, 16};
    writer.add_field(a.rho_ref, opts);
    writer.finish();
  }
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  const ArchiveReader reader = ArchiveReader::open_file(path);
  EXPECT_TRUE(reader.scrub().clean());
  std::remove(path.c_str());
}

// -- Epoch appends under power cuts ------------------------------------------

TEST(Chaos, DirFsyncFailureSurfacesButFileStaysPublished) {
  const ChaosArchive& a = chaos_archive();
  const std::string path = ::testing::TempDir() + "xfc_chaos_dirsync." +
                           std::to_string(::getpid()) + ".xfa";
  std::remove(path.c_str());

  detail::g_fail_dir_fsync_for_tests.store(1);
  {
    FileSink file(path);
    ArchiveWriter writer(file);
    ArchiveFieldOptions opts;
    opts.eb = ErrorBound::relative(1e-3);
    opts.tile = Shape{16, 16};
    writer.add_field(a.rho_ref, opts);
    EXPECT_THROW(writer.finish(), IoError);
  }
  EXPECT_EQ(detail::g_fail_dir_fsync_for_tests.load(), 0);  // hook consumed

  // The rename preceded the failed directory fsync, so the archive is
  // already published and intact: the error reports unproven durability of
  // the directory entry, it must not be "handled" by deleting good data.
  ASSERT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(path + ".tmp"));
  EXPECT_TRUE(ArchiveReader::open_file(path).scrub().clean());
  std::remove(path.c_str());
}

TEST(Chaos, AppendFileSinkTruncatesTheTornTail) {
  const std::string path = ::testing::TempDir() + "xfc_chaos_appendsink." +
                           std::to_string(::getpid()) + ".bin";
  std::remove(path.c_str());
  std::vector<std::uint8_t> seed(100);
  for (std::size_t i = 0; i < seed.size(); ++i)
    seed[i] = static_cast<std::uint8_t>(i);
  write_file(path, seed);

  // Resuming at 60 declares bytes 60..99 a torn tail; they must be gone
  // before the first fresh byte lands, never interleaved with it.
  {
    AppendFileSink sink(path, 60);
    EXPECT_EQ(sink.size(), 60u);
    const std::vector<std::uint8_t> tail(20, 0xAB);
    sink.append(tail);
    sink.sync();
    EXPECT_EQ(sink.size(), 80u);
  }
  const std::vector<std::uint8_t> after = read_file(path);
  ASSERT_EQ(after.size(), 80u);
  for (std::size_t i = 0; i < 60; ++i) EXPECT_EQ(after[i], seed[i]);
  for (std::size_t i = 60; i < 80; ++i) EXPECT_EQ(after[i], 0xAB);

  // A resume point past EOF means the caller's sealed state never existed
  // in this file — refuse loudly rather than write at a phantom offset.
  EXPECT_THROW(AppendFileSink(path, 200), IoError);
  std::remove(path.c_str());
}

// Satellite: exhaustive prefix-truncation recovery. Every write in the
// epoch protocol is a sequential append, so *any* power-cut image under
// prefix persistence semantics is exactly a byte prefix of the full
// stream. Sweeping every prefix length is therefore a complete crash
// matrix for the in-memory protocol: each one must open to the newest
// fully sealed epoch bit-exactly, or throw a typed error when not even
// epoch 0 is complete. Partial epochs are absent, never wrong.
TEST(Chaos, EveryPrefixRecoversToTheNewestSealedEpoch) {
  const EpochArchive& e = epoch_archive();
  const std::span<const std::uint8_t> all(e.bytes);
  for (std::size_t len = 0; len <= all.size(); ++len) {
    const std::span<const std::uint8_t> prefix = all.first(len);
    if (len < e.sealed[0]) {
      EXPECT_THROW(ArchiveReader::open_memory(prefix), CorruptStream)
          << "prefix " << len;
      continue;
    }
    std::size_t state = 0;
    while (state + 1 < e.sealed.size() && e.sealed[state + 1] <= len) ++state;
    const ArchiveReader reader = ArchiveReader::open_memory(prefix);
    ASSERT_EQ(reader.epoch_count(), state + 1) << "prefix " << len;
    ASSERT_EQ(reader.logical_size(), e.sealed[state]) << "prefix " << len;
    ASSERT_EQ(reader.recovered_bytes_discarded(), len - e.sealed[state])
        << "prefix " << len;
    ASSERT_TRUE(reader.scrub().clean()) << "prefix " << len;
    ASSERT_EQ(reader.fields().size(), state == 0 ? 1u : 2u);
    const Field a = reader.read_field("a");
    ASSERT_EQ(a.array(), state < 2 ? e.a0.array() : e.a2.array())
        << "prefix " << len;
    if (state >= 1) {
      const Field b = reader.read_field("b");
      ASSERT_EQ(b.array(), e.b1.array()) << "prefix " << len;
    }
  }
}

// Tentpole: the file-backed crash-point sweep. Kill one append at every
// injectable point — each data/footer/trailer append and both fsync
// barriers (fail_calls), then a torn-write sweep over byte thresholds
// (fail_after_bytes) — reopen the file, and require recovery to a
// scrub-clean archive holding exactly a sealed epoch set. After every
// recovery the archive must also accept a clean re-append: a crash must
// never brick live ingest.
TEST(Chaos, AppendCrashPointSweepRecoversAndResumes) {
  const EpochArchive& e = epoch_archive();
  const std::string path = ::testing::TempDir() + "xfc_chaos_crashpoint." +
                           std::to_string(::getpid()) + ".xfa";
  const std::span<const std::uint8_t> epoch0 =
      std::span<const std::uint8_t>(e.bytes).first(e.sealed[0]);
  const Field b_field = ArchiveReader::open_memory(
                            std::span<const std::uint8_t>(e.bytes).first(
                                e.sealed[1]))
                            .read_field("b");
  ArchiveFieldOptions zopts = e.opts;
  zopts.codec = CodecId::kZfp;

  // Instrumented clean pass: counts the injectable call indices and pins
  // the exact byte growth of one appended epoch.
  std::uint64_t total_calls = 0;
  {
    write_file(path, epoch0);
    const ArchiveReader r = ArchiveReader::open_file(path);
    AppendFileSink file(path, r.logical_size());
    auto injector = std::make_shared<FaultInjector>(FaultPlan{});
    FaultyByteSink sink(file, injector);
    ArchiveAppender appender(sink, r);
    appender.append_field(b_field, zopts);
    EXPECT_EQ(appender.finish_epoch(), 1u);
    total_calls = injector->counters().calls;
  }
  const std::size_t full_size = file_size(path);
  ASSERT_GT(full_size, e.sealed[0]);
  // At minimum: one body append, barrier, footer append, trailer append,
  // barrier — the protocol's five distinguishable crash neighborhoods.
  ASSERT_GE(total_calls, 5u);

  const auto check_recovery_and_resume = [&](std::uint64_t tag) {
    // Reopen after the kill: the partial epoch must be absent, never wrong.
    const ArchiveReader r = ArchiveReader::open_file(path);
    ASSERT_TRUE(r.scrub().clean()) << "crash point " << tag;
    if (r.epoch_count() == 2) {
      // The kill hit at/after the final barrier with every byte already in
      // the file: epoch 1 is sealed (durability unproven but content
      // valid) — an acceptable post-crash state.
      ASSERT_EQ(r.logical_size(), file_size(path));
      ASSERT_EQ(r.fields().size(), 2u);
      ASSERT_EQ(r.read_field("b").array(), b_field.array());
    } else {
      ASSERT_EQ(r.epoch_count(), 1u) << "crash point " << tag;
      ASSERT_EQ(r.logical_size(), e.sealed[0]);
      ASSERT_EQ(r.fields().size(), 1u);
      ASSERT_EQ(r.find("b"), nullptr);
      ASSERT_EQ(r.recovered_bytes_discarded(), file_size(path) - e.sealed[0]);
    }
    ASSERT_EQ(r.read_field("a").array(), e.a0.array()) << "crash point " << tag;

    // The survivor accepts a clean append (the torn tail, if any, is
    // truncated away by the resume) and seals it.
    {
      AppendFileSink file(path, r.logical_size());
      ArchiveAppender appender(file, r);
      Field c = e.a0;
      c.set_name("c");
      appender.append_field(c, e.opts);
      appender.finish_epoch();
    }
    const ArchiveReader again = ArchiveReader::open_file(path);
    ASSERT_TRUE(again.scrub().clean()) << "crash point " << tag;
    ASSERT_EQ(again.recovered_bytes_discarded(), 0u);
    ASSERT_NE(again.find("c"), nullptr);
    ASSERT_EQ(again.read_field("a").array(), e.a0.array());
  };

  // (1) Hard kill at every call index: appends die before any byte lands,
  // barriers die between write-back and fsync completion.
  for (std::uint64_t k = 0; k < total_calls; ++k) {
    write_file(path, epoch0);
    {
      const ArchiveReader r = ArchiveReader::open_file(path);
      AppendFileSink file(path, r.logical_size());
      FaultPlan plan;
      plan.fail_calls = {k};
      auto injector = std::make_shared<FaultInjector>(plan);
      FaultyByteSink sink(file, injector);
      ArchiveAppender appender(sink, r);
      EXPECT_THROW(
          {
            appender.append_field(b_field, zopts);
            appender.finish_epoch();
          },
          IoError)
          << "call " << k;
      EXPECT_EQ(injector->counters().injected_errors, 1u);
    }
    check_recovery_and_resume(k);
  }

  // (2) Torn-write sweep: the disk "fills up" at a swept byte threshold,
  // so some append lands only a prefix. Budgeted by XFC_CHAOS_SEEDS.
  const std::size_t span = full_size - 1;
  const std::size_t budget =
      std::min<std::size_t>(static_cast<std::size_t>(chaos_seeds()), span);
  for (std::size_t i = 0; i < budget; ++i) {
    const std::size_t threshold = 1 + (i * span) / budget;
    write_file(path, epoch0);
    bool threw = false;
    {
      const ArchiveReader r = ArchiveReader::open_file(path);
      AppendFileSink file(path, r.logical_size());
      FaultPlan plan;
      plan.fail_after_bytes = threshold;
      auto injector = std::make_shared<FaultInjector>(plan);
      FaultyByteSink sink(file, injector);
      ArchiveAppender appender(sink, r);
      try {
        appender.append_field(b_field, zopts);
        appender.finish_epoch();
      } catch (const IoError&) {
        threw = true;
      }
    }
    if (!threw) {
      // The threshold fell beyond the last append: the epoch sealed whole.
      const ArchiveReader r = ArchiveReader::open_file(path);
      ASSERT_EQ(r.epoch_count(), 2u) << "threshold " << threshold;
      ASSERT_TRUE(r.scrub().clean());
      continue;
    }
    check_recovery_and_resume(threshold);
  }
  std::remove(path.c_str());
}

// -- Negative caching --------------------------------------------------------

TEST(Chaos, NegativeCacheBacksOffPoisonedTile) {
  const ChaosArchive& a = chaos_archive();
  static const auto damaged = with_corrupt_tile(a.bytes, "rho", 4);
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(damaged));

  TileCacheConfig config;
  config.negative_ttl_ms = 500;
  config.negative_ttl_max_ms = 8000;
  TileCache cache(config);
  const std::uint64_t id = cache.add_archive(reader);

  // First request decodes and fails; everything inside the TTL window is
  // served the cached typed error without a decode.
  EXPECT_THROW(cache.get(id, "rho", 4), CorruptStream);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().decode_errors, 1u);
  for (int i = 0; i < 4; ++i) EXPECT_THROW(cache.get(id, "rho", 4), CorruptStream);
  EXPECT_EQ(cache.stats().misses, 1u);  // exactly one decode attempt
  EXPECT_EQ(cache.stats().negative_hits, 4u);
  EXPECT_EQ(cache.stats().negative_entries, 1u);

  // A stampede of threads also costs zero further decodes.
  std::vector<std::thread> threads;
  std::atomic<int> typed{0};
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&] {
      try {
        (void)cache.get(id, "rho", 4);
      } catch (const CorruptStream&) {
        typed.fetch_add(1);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(typed.load(), 8);
  EXPECT_EQ(cache.stats().misses, 1u);

  // After the TTL expires the decode is retried once (the backoff window
  // doubles), and the fresh failure is negatively cached again.
  std::this_thread::sleep_for(std::chrono::milliseconds(700));
  EXPECT_THROW(cache.get(id, "rho", 4), CorruptStream);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_THROW(cache.get(id, "rho", 4), CorruptStream);
  EXPECT_EQ(cache.stats().misses, 2u);  // negative hit, window now 1000ms

  // Healthy tiles are unaffected.
  const auto tile = cache.get(id, "rho", 0);
  ASSERT_NE(tile, nullptr);
  EXPECT_EQ(tile->shape(), (Shape{16, 16}));
}

TEST(Chaos, NegativeCacheDisabledRetriesEveryRequest) {
  const ChaosArchive& a = chaos_archive();
  static const auto damaged = with_corrupt_tile(a.bytes, "zeta", 1);
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(damaged));
  TileCacheConfig config;
  config.negative_ttl_ms = 0;
  TileCache cache(config);
  const std::uint64_t id = cache.add_archive(reader);
  EXPECT_THROW(cache.get(id, "zeta", 1), CorruptStream);
  EXPECT_THROW(cache.get(id, "zeta", 1), CorruptStream);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().negative_hits, 0u);
}

// -- HTTP chaos --------------------------------------------------------------

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ChaosHttp, SurvivesMidResponseClientDeath) {
  const ChaosArchive& a = chaos_archive();
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(a.bytes));
  ArchiveService service(reader);
  HttpConfig config;
  config.idle_timeout_ms = 200;  // stalled half-requests go away fast
  HttpServer http(config, [&service](const HttpRequest& r) {
    return service.handle(r);
  });
  http.start();

  // Clients that request a large region and vanish — before, during and
  // after the response — must not take the server down or leak slots.
  const std::string req =
      "GET /field/rho/region?lo=0,0&hi=48,40 HTTP/1.1\r\nHost: x\r\n\r\n";
  for (int i = 0; i < 12; ++i) {
    const int fd = connect_loopback(http.port());
    ASSERT_GE(fd, 0);
    // Never block the chaos loop itself: a connection that gets no
    // response (half a request sent, or none) is abandoned after 100ms.
    timeval tv{};
    tv.tv_usec = 100'000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    if (i % 3 != 0)
      (void)::send(fd, req.data(), i % 3 == 1 ? req.size() : req.size() / 2,
                   MSG_NOSIGNAL);
    if (i % 2 == 0) {
      char tiny[64];
      (void)::recv(fd, tiny, sizeof tiny, 0);  // read a little, then die
    }
    ::close(fd);
  }

  HttpClient client("127.0.0.1", http.port());
  const auto resp = client.get("/field/rho/region?lo=0,0&hi=16,16");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), 16u * 16u * sizeof(float));
  http.stop();
}

TEST(ChaosHttp, SlowLorisConnectionsAreReaped) {
  HttpConfig config;
  config.idle_timeout_ms = 200;
  HttpServer http(config, [](const HttpRequest&) {
    return HttpResponse::text(200, "ok\n");
  });
  http.start();

  std::vector<int> fds;
  for (int i = 0; i < 6; ++i) {
    const int fd = connect_loopback(http.port());
    ASSERT_GE(fd, 0);
    (void)::send(fd, "G", 1, MSG_NOSIGNAL);  // drip one byte, then stall
    fds.push_back(fd);
  }
  // The event loop wakes at least once a second; past the idle timeout the
  // stalled connections are gone and their slots are free again.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  EXPECT_EQ(http.stats().open_connections, 0u);

  HttpClient client("127.0.0.1", http.port());
  EXPECT_EQ(client.get("/x").status, 200);
  for (const int fd : fds) ::close(fd);
  http.stop();
}

TEST(ChaosHttp, DrainFinishesInFlightAndRefusesNew) {
  HttpConfig config;
  config.drain_deadline_ms = 5000;
  HttpServer http(config, [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    return HttpResponse::text(200, "slow ok\n");
  });
  http.start();
  const std::uint16_t port = http.port();

  std::atomic<int> ok{0}, closed_marked{0}, refused{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i)
    threads.emplace_back([&] {
      try {
        HttpClientConfig cc;
        cc.max_retries = 0;  // a refused connect is a real signal here
        HttpClient client("127.0.0.1", port, cc);
        const auto resp = client.get("/work");
        if (resp.status == 200) ok.fetch_add(1);
        const std::string* conn = resp.header("Connection");
        if (conn != nullptr && *conn == "close") closed_marked.fetch_add(1);
      } catch (const IoError&) {
        refused.fetch_add(1);  // connected after the listener closed
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const bool drained = http.drain();
  for (auto& t : threads) t.join();

  EXPECT_TRUE(drained);
  EXPECT_GE(ok.load(), 1);  // in-flight requests finished with real answers
  EXPECT_EQ(ok.load() + refused.load(), 3);
  // Every response served during the drain told the client to hang up.
  EXPECT_EQ(closed_marked.load(), ok.load());

  // The listener is gone: new connections are refused at the TCP level.
  EXPECT_LT(connect_loopback(port), 0);
}

TEST(ChaosHttp, OverloadShedsWithRetryAfter) {
  // The global shed counter is process-wide, so work from deltas.
  const std::uint64_t shed_before = obs::http_shed_total().value();
  HttpConfig config;
  config.max_pending_requests = 1;
  HttpServer http(config, [](const HttpRequest&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    return HttpResponse::text(200, "ok\n");
  });
  http.start();
  const std::uint16_t port = http.port();

  std::atomic<int> served{0}, shed{0}, other{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i)
    threads.emplace_back([&] {
      HttpClient client("127.0.0.1", port);
      for (int k = 0; k < 3; ++k) {
        const auto resp = client.get("/x");
        if (resp.status == 200) {
          served.fetch_add(1);
        } else if (resp.status == 503) {
          shed.fetch_add(1);
          EXPECT_NE(resp.header("Retry-After"), nullptr);
        } else {
          other.fetch_add(1);
        }
      }
    });
  for (auto& t : threads) t.join();

  EXPECT_EQ(served.load() + shed.load(), 24);  // every request got an answer
  EXPECT_EQ(other.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(http.stats().shed_requests, static_cast<std::uint64_t>(shed.load()));
#ifndef XFC_NO_METRICS
  // The registry's xfs_http_shed_total mirrors the server's own tally —
  // the /metrics view and the /stats view must never disagree.
  EXPECT_EQ(obs::http_shed_total().value() - shed_before,
            static_cast<std::uint64_t>(shed.load()));
#endif
  http.stop();
}

TEST(ChaosHttp, AllowPartialServesDegradedRegions) {
  const ChaosArchive& a = chaos_archive();
  static const auto damaged = with_corrupt_tile(a.bytes, "rho", 4);
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(damaged));
  ArchiveService service(reader);
  HttpServer http(HttpConfig{}, [&service](const HttpRequest& r) {
    return service.handle(r);
  });
  http.start();
  HttpClient client("127.0.0.1", http.port());

  // Default: the damaged tile fails the whole region with a named culprit.
  const auto strict = client.get("/field/rho/region?lo=0,0&hi=48,40");
  EXPECT_EQ(strict.status, 502);
  EXPECT_NE(strict.body.find("rho"), std::string::npos);
  EXPECT_NE(strict.body.find("allow_partial"), std::string::npos);

  // Opt-in degraded mode: 200 with a tile-error manifest and no ETag (a
  // degraded body must never validate a later 304).
  const auto part =
      client.get("/field/rho/region?lo=0,0&hi=48,40&allow_partial=1");
  EXPECT_EQ(part.status, 200);
  ASSERT_EQ(part.body.size(), 48u * 40u * sizeof(float));
  ASSERT_NE(part.header("X-Xfc-Bad-Tiles"), nullptr);
  EXPECT_EQ(*part.header("X-Xfc-Bad-Tiles"), "4");
  EXPECT_EQ(part.header("ETag"), nullptr);

  std::vector<float> vals(48 * 40);
  std::memcpy(vals.data(), part.body.data(), part.body.size());
  const TileGrid grid(Shape{48, 40}, Shape{16, 16});
  const TileBox hole = grid.box(4);
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 40; ++j) {
      if (in_box(hole, i, j))
        ASSERT_EQ(vals[i * 40 + j], 0.0f);
      else
        ASSERT_EQ(vals[i * 40 + j], a.rho_ref.array()(i, j));
    }

  // JSON flavor: NaN fill serializes as null, errors land in the body.
  const auto json = client.get(
      "/field/rho/region?lo=16,16&hi=32,32&fmt=json&allow_partial=1&fill=nan");
  EXPECT_EQ(json.status, 200);
  EXPECT_NE(json.body.find("tile_errors"), std::string::npos);
  EXPECT_NE(json.body.find("null"), std::string::npos);
  EXPECT_EQ(json.header("ETag"), nullptr);

  // An undamaged region still validates and carries its ETag.
  const auto fine = client.get("/field/zeta/region?lo=0,0&hi=16,16");
  EXPECT_EQ(fine.status, 200);
  EXPECT_NE(fine.header("ETag"), nullptr);

  // Readiness flips independently of liveness.
  EXPECT_EQ(client.get("/readyz").status, 200);
  service.set_ready(false);
  const auto notready = client.get("/readyz");
  EXPECT_EQ(notready.status, 503);
  EXPECT_NE(notready.header("Retry-After"), nullptr);
  EXPECT_EQ(client.get("/healthz").status, 200);
  service.set_ready(true);
  http.stop();
}

TEST(ChaosHttp, ClientRetriesTransportFailures) {
  // A hand-rolled listener that kills the first connection outright, then
  // speaks just enough HTTP on the second: the client's transport retry
  // must bridge the gap without surfacing an error.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(lfd, 4), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);

  std::thread srv([lfd] {
    const int c1 = ::accept(lfd, nullptr, nullptr);
    if (c1 >= 0) ::close(c1);  // die before answering
    const int c2 = ::accept(lfd, nullptr, nullptr);
    if (c2 < 0) return;
    std::string in;
    char buf[512];
    while (in.find("\r\n\r\n") == std::string::npos) {
      const ssize_t n = ::recv(c2, buf, sizeof buf, 0);
      if (n <= 0) break;
      in.append(buf, static_cast<std::size_t>(n));
    }
    const char resp[] =
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
        "Content-Length: 2\r\nConnection: close\r\n\r\nok";
    (void)::send(c2, resp, sizeof resp - 1, MSG_NOSIGNAL);
    ::close(c2);
  });

  HttpClientConfig config;
  config.max_retries = 3;
  config.backoff_base_ms = 1;
  config.backoff_max_ms = 5;
  HttpClient client("127.0.0.1", port, config);
  const auto resp = client.get("/retry-me");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok");
  srv.join();
  ::close(lfd);

  // Exhausted retries surface as a typed IoError, and retrying can be
  // disabled outright.
  HttpClientConfig none;
  none.max_retries = 0;
  HttpClient dead("127.0.0.1", port, none);  // nothing listens here anymore
  EXPECT_THROW(dead.get("/gone"), IoError);
}

}  // namespace
}  // namespace xfc
