// One-off generator (not part of the build): emits tests/golden_streams.hpp
// from the encoders of the checkout it is compiled against. Run from the
// repo root, e.g.:
//   g++ -std=c++20 -O2 -Isrc tests/make_golden.cpp build/libxfc.a -lpthread \
//       -o /tmp/make_golden && /tmp/make_golden
// The checked-in header was generated at the PR 4 head (pre-PR5 encoders).
// Do NOT regenerate it casually: the bytes are the backward-compat contract
// that test_golden.cpp pins. Compressed bytes + decoded-output CRCs pin that
// streams written before the PR still decode bit-identically after it.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "cfnn/cfnn.hpp"
#include "crossfield/crossfield.hpp"
#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "encode/miniflate.hpp"
#include "io/crc32.hpp"
#include "io/stream.hpp"
#include "sz/compressor.hpp"
#include "sz/interpolation.hpp"

using namespace xfc;

namespace {

std::vector<std::uint8_t> golden_input(std::size_t n) {
  Rng rng(1234);
  std::vector<std::uint8_t> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<std::uint8_t>(
        (i % 113) * 3 ^ (rng.uniform() < 0.07 ? rng.next_u64() : 0));
  return data;
}

void emit_array(std::FILE* f, const char* name,
                const std::vector<std::uint8_t>& bytes) {
  std::fprintf(f, "inline constexpr unsigned char %s[] = {", name);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i % 16 == 0) std::fprintf(f, "\n    ");
    std::fprintf(f, "0x%02x,", bytes[i]);
  }
  std::fprintf(f, "\n};\n");
}

std::uint32_t field_crc(const Field& fld) {
  return Crc32::of(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(fld.array().data()),
      fld.size() * sizeof(float)));
}

}  // namespace

int main() {
  std::FILE* f = std::fopen("tests/golden_streams.hpp", "w");
  std::fprintf(f,
      "#ifndef XFC_TESTS_GOLDEN_STREAMS_HPP\n"
      "#define XFC_TESTS_GOLDEN_STREAMS_HPP\n\n"
      "// Golden streams written by the PR-4-era encoders (generated once,\n"
      "// before the PR 5 lossless-tail rebuild; see test_golden.cpp).\n"
      "// These bytes are a format contract: every future decoder must\n"
      "// decode them bit-identically. Do not regenerate without a format\n"
      "// version bump.\n\n"
      "#include <cstdint>\n\n"
      "namespace xfc::golden {\n\n"
      "inline constexpr std::size_t kMiniflateInputSize = 20000;\n"
      "inline constexpr std::uint64_t kMiniflateInputSeed = 1234;\n\n");

  const auto input = golden_input(20000);
  std::fprintf(f, "inline constexpr std::uint32_t kMiniflateInputCrc = 0x%08xu;\n\n",
               Crc32::of(input));
  emit_array(f, "kMiniflateFast",
             miniflate_compress(input, MiniflateLevel::kFast));
  emit_array(f, "kMiniflateDefault",
             miniflate_compress(input, MiniflateLevel::kDefault));
  emit_array(f, "kMiniflateBest",
             miniflate_compress(input, MiniflateLevel::kBest));

  auto ds = make_dataset(DatasetKind::kCesm, Shape{96, 96}, 7);
  const Field& fld = ds.fields[0];

  const auto sz_stream = sz_compress(fld, SzOptions{});
  emit_array(f, "kSzStream", sz_stream);
  std::fprintf(f, "inline constexpr std::uint32_t kSzDecodedCrc = 0x%08xu;\n\n",
               field_crc(sz_decompress(sz_stream)));

  const auto interp_stream = interp_compress(fld, InterpOptions{});
  emit_array(f, "kInterpStream", interp_stream);
  std::fprintf(f, "inline constexpr std::uint32_t kInterpDecodedCrc = 0x%08xu;\n\n",
               field_crc(interp_decompress(interp_stream)));

  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.tile = Shape{48, 48};
  writer.add_field(fld, opts);
  ArchiveFieldOptions iopts;
  iopts.tile = Shape{48, 48};
  iopts.codec = CodecId::kInterp;
  writer.add_field(ds.fields[1], iopts);
  writer.finish();
  const auto archive = sink.take();
  emit_array(f, "kArchive", archive);
  {
    const ArchiveReader reader = ArchiveReader::open_memory(archive);
    std::fprintf(f,
        "inline constexpr std::uint32_t kArchiveField0Crc = 0x%08xu;\n",
        field_crc(reader.read_field(reader.fields()[0].name)));
    std::fprintf(f,
        "inline constexpr std::uint32_t kArchiveField1Crc = 0x%08xu;\n\n",
        field_crc(reader.read_field(reader.fields()[1].name)));
  }
  // Cross-field archive: pins that ArchiveReader + cross_field_decompress
  // (including CfnnModel::infer's floating-point evaluation order, which
  // the decoder replays bit-exactly against the encoder's predictions)
  // keep decoding pre-PR streams identically.
  {
    Rng rng(2718);
    const Shape shape{40, 48};
    Field a0("A0", F32Array(shape)), a1("A1", F32Array(shape)),
        target("TGT", F32Array(shape));
    for (std::size_t i = 0; i < shape.size(); ++i) {
      const double base = std::sin(0.11 * static_cast<double>(i % 48)) *
                          std::cos(0.07 * static_cast<double>(i / 48));
      const double second = std::cos(0.05 * static_cast<double>(i % 48));
      a0.array()[i] = static_cast<float>(base + rng.normal(0, 0.05));
      a1.array()[i] = static_cast<float>(second + rng.normal(0, 0.05));
      target.array()[i] = static_cast<float>(
          0.8 * base + 0.3 * second * second / 8.0 + rng.normal(0, 0.05));
    }
    CfnnTrainOptions train;
    train.epochs = 4;
    train.patches_per_epoch = 16;
    train.patch = 16;
    train.batch = 8;
    const CfnnModel model = train_cross_field_model(
        target, {&a0, &a1}, CfnnConfig{8, 4, 3}, train);

    ArchiveFieldOptions aopts;
    aopts.tile = Shape{16, 16};
    aopts.keep_reconstruction = true;
    VectorSink xsink;
    ArchiveWriter xwriter(xsink);
    xwriter.add_field(a0, aopts);
    xwriter.add_field(a1, aopts);
    xwriter.add_cross_field(target, {"A0", "A1"}, model, aopts);
    xwriter.finish();
    const auto xarchive = xsink.take();
    emit_array(f, "kCrossFieldArchive", xarchive);
    const ArchiveReader xreader = ArchiveReader::open_memory(xarchive);
    std::fprintf(f,
        "inline constexpr std::uint32_t kCrossFieldTargetCrc = 0x%08xu;\n",
        field_crc(xreader.read_field("TGT")));
    std::fprintf(f,
        "inline constexpr std::uint32_t kCrossFieldAnchor0Crc = 0x%08xu;\n\n",
        field_crc(xreader.read_field("A0")));
  }

  std::fprintf(f, "}  // namespace xfc::golden\n\n#endif\n");
  std::fclose(f);
  std::printf("wrote tests/golden_streams.hpp (%zu-byte archive)\n",
              archive.size());
  return 0;
}
