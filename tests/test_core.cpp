// Unit tests for src/core: shapes, arrays, fields, RNG, small utilities.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "core/error.hpp"
#include "core/field.hpp"
#include "core/ndarray.hpp"
#include "core/rng.hpp"
#include "core/utils.hpp"

namespace xfc {
namespace {

TEST(Shape, SizeAndAccess) {
  Shape s1{7};
  EXPECT_EQ(s1.ndim(), 1u);
  EXPECT_EQ(s1.size(), 7u);

  Shape s2{3, 5};
  EXPECT_EQ(s2.ndim(), 2u);
  EXPECT_EQ(s2.size(), 15u);
  EXPECT_EQ(s2[0], 3u);
  EXPECT_EQ(s2[1], 5u);

  Shape s3{2, 3, 4};
  EXPECT_EQ(s3.size(), 24u);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, FromSpan) {
  const std::size_t dims[3] = {4, 5, 6};
  Shape s(std::span<const std::size_t>(dims, 3));
  EXPECT_EQ(s.size(), 120u);
}

TEST(Shape, RejectsBadRank) {
  EXPECT_THROW(Shape({}), InvalidArgument);
  EXPECT_THROW(Shape({1, 2, 3, 4}), InvalidArgument);
}

TEST(NdArray, ZeroInitialised) {
  F32Array a(Shape{4, 4});
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 0.0f);
}

TEST(NdArray, RowMajorIndexing) {
  I32Array a(Shape{3, 4});
  a(1, 2) = 42;
  EXPECT_EQ(a[1 * 4 + 2], 42);

  I32Array b(Shape{2, 3, 4});
  b(1, 2, 3) = 7;
  EXPECT_EQ(b[(1 * 3 + 2) * 4 + 3], 7);
}

TEST(NdArray, WrapExistingData) {
  std::vector<float> v{1, 2, 3, 4, 5, 6};
  F32Array a(Shape{2, 3}, std::move(v));
  EXPECT_EQ(a(1, 2), 6.0f);
  EXPECT_THROW(F32Array(Shape{2, 3}, std::vector<float>{1, 2}),
               InvalidArgument);
}

TEST(NdArray, CheckedAccessThrows) {
  F32Array a(Shape{2, 2});
  EXPECT_NO_THROW(a.at(1, 1));
  EXPECT_THROW(a.at(2, 0), InvalidArgument);
  F32Array b(Shape{2, 2, 2});
  EXPECT_THROW(b.at(0, 0, 2), InvalidArgument);
}

TEST(Field, Statistics) {
  F32Array a(Shape{2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  Field f("demo", std::move(a));
  EXPECT_EQ(f.name(), "demo");
  auto [lo, hi] = f.min_max();
  EXPECT_EQ(lo, 1.0f);
  EXPECT_EQ(hi, 4.0f);
  EXPECT_FLOAT_EQ(f.value_range(), 3.0f);
  EXPECT_DOUBLE_EQ(f.mean(), 2.5);
  EXPECT_NEAR(f.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Field, EmptyFieldIsSafe) {
  Field f;
  EXPECT_EQ(f.value_range(), 0.0f);
  EXPECT_EQ(f.mean(), 0.0);
  EXPECT_EQ(f.stddev(), 0.0);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    const auto v = r.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_THROW(r.uniform_index(0), InvalidArgument);
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng r(5);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Zigzag, RoundtripAndOrdering) {
  for (std::int32_t v : {0, -1, 1, -2, 2, 100, -100, INT32_MAX, INT32_MIN})
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  // Small magnitudes map to small codes.
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
}

TEST(Zigzag, SixtyFourBit) {
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1}, INT64_MAX,
        INT64_MIN, std::int64_t{1} << 40, -(std::int64_t{1} << 40)})
    EXPECT_EQ(zigzag_decode64(zigzag_encode64(v)), v);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t n = 10007;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, ChunksPartitionTheRange) {
  constexpr std::size_t n = 4099;  // prime: uneven final chunk
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunked(0, n, 64, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi, n);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForChunked, NonzeroBeginRespected) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_chunked(17, 93, 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(hits[i].load(), i >= 17 && i < 93 ? 1 : 0) << i;
}

TEST(ParallelForChunked, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for_chunked(9, 9, 4,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunked, NestedCallsRunInline) {
  std::atomic<int> total{0};
  parallel_for_chunked(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i)
      parallel_for_chunked(0, 10, 2, [&](std::size_t ilo, std::size_t ihi) {
        total.fetch_add(static_cast<int>(ihi - ilo));
      });
  });
  EXPECT_EQ(total.load(), 80);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

TEST(Expects, ThrowsOnViolation) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(expects(false, "boom"), InvalidArgument);
}

}  // namespace
}  // namespace xfc
