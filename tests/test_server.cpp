// XFS serving-subsystem tests: the sharded decoded-tile cache (bit-identity
// with direct reads, single-flight decode under contention, LRU eviction at
// tiny budgets, anchor resolution through the cache), the per-tile decode
// entry point, anchor-graph validation, and the HTTP layer (endpoints over
// real loopback sockets, keep-alive/pipelining, and a malformed-request
// fuzz suite that must answer clean 4xx/5xx without killing the server).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "archive/archive_appender.hpp"
#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/tile.hpp"
#include "core/rng.hpp"
#include "crossfield/crossfield.hpp"
#include "server/http.hpp"
#include "server/service.hpp"
#include "server/tile_cache.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

using server::ArchiveService;
using server::HttpClient;
using server::HttpRequest;
using server::HttpResponse;
using server::HttpServer;
using server::TileCache;
using server::TileCacheConfig;

Field smooth_field(const std::string& name, const Shape& shape,
                   std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w) / 7.0;
    const double y = static_cast<double>(i / w) / 11.0;
    a[i] = static_cast<float>(std::sin(x) * std::cos(y) * 20.0 +
                              rng.normal(0, 0.1));
  }
  return Field(name, std::move(a));
}

/// Archive with one field per codec, 32x32 tiles over a ragged 70x90 grid.
std::shared_ptr<const ArchiveReader> make_multi_codec_archive(
    std::vector<std::uint8_t>& storage) {
  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{32, 32};
  const std::pair<const char*, CodecId> codecs[] = {
      {"f_sz", CodecId::kSz},
      {"f_classic", CodecId::kSzClassic},
      {"f_interp", CodecId::kInterp},
      {"f_zfp", CodecId::kZfp},
  };
  std::uint64_t seed = 7;
  for (const auto& [name, codec] : codecs) {
    opts.codec = codec;
    writer.add_field(smooth_field(name, Shape{70, 90}, seed++), opts);
  }
  writer.finish();
  storage = sink.take();
  return std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage));
}

/// Anchor pair + cross-field target (16x16 tiles, quick CFNN).
std::shared_ptr<const ArchiveReader> make_cross_field_archive(
    std::vector<std::uint8_t>& storage) {
  const Shape shape{40, 48};
  Rng rng(31);
  Field target("TGT", F32Array(shape));
  Field a0("A0", F32Array(shape));
  for (std::size_t i = 0; i < target.size(); ++i) {
    const double x = static_cast<double>(i % 48) / 6.0;
    const double y = static_cast<double>(i / 48) / 9.0;
    const double base = std::sin(x) * std::cos(y) * 15.0;
    a0.array()[i] = static_cast<float>(base + rng.normal(0, 0.05));
    target.array()[i] = static_cast<float>(0.8 * base + rng.normal(0, 0.05));
  }
  CfnnTrainOptions train;
  train.epochs = 4;
  train.patches_per_epoch = 16;
  train.patch = 16;
  train.batch = 8;
  const CfnnModel model =
      train_cross_field_model(target, {&a0}, CfnnConfig{8, 4, 3}, train);

  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{16, 16};
  opts.keep_reconstruction = true;
  writer.add_field(a0, opts);
  writer.add_cross_field(target, {"A0"}, model, opts);
  writer.finish();
  storage = sink.take();
  return std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage));
}

HttpRequest region_request(const std::string& field, const std::string& lo,
                           const std::string& hi,
                           const std::string& fmt = "") {
  HttpRequest req;
  req.method = "GET";
  req.path = "/field/" + field + "/region";
  req.query = "lo=" + lo + "&hi=" + hi;
  if (!fmt.empty()) req.query += "&fmt=" + fmt;
  return req;
}

std::string field_bytes(const Field& f) {
  return std::string(reinterpret_cast<const char*>(f.data()),
                     f.size() * sizeof(float));
}

// -- read_tile: the public per-tile decode entry point -----------------------

TEST(ReadTile, MatchesFullDecodeCropPerCodec) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  for (const ArchiveFieldInfo& info : reader->fields()) {
    const Field full = reader->read_field(info.name);
    const TileGrid grid(info.shape, info.tile);
    for (std::size_t t = 0; t < grid.num_tiles(); ++t) {
      const Field tile = reader->read_tile(info, t, {});
      const TileBox box = grid.box(t);
      ASSERT_EQ(tile.shape(), box.extents);
      const F32Array crop = extract_tile(full.array(), box);
      ASSERT_EQ(tile.array(), crop) << info.name << " tile " << t;
    }
  }
}

TEST(ReadTile, CrossFieldResolvesAnchorsItself) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_cross_field_archive(storage);
  const ArchiveFieldInfo& tgt = *reader->find("TGT");
  const Field full = reader->read_field("TGT");
  const TileGrid grid(tgt.shape, tgt.tile);
  for (std::size_t t = 0; t < grid.num_tiles(); ++t) {
    const Field tile = reader->read_tile(tgt, t, {});
    ASSERT_EQ(tile.array(), extract_tile(full.array(), grid.box(t)));
  }
}

TEST(ReadTile, RejectsOutOfRangeOrdinal) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  EXPECT_THROW(reader->read_tile("f_sz", 1u << 20), InvalidArgument);
}

// -- Anchor graph validation -------------------------------------------------

ArchiveFieldInfo synthetic_field(const std::string& name,
                                 std::vector<std::string> anchors) {
  ArchiveFieldInfo f;
  f.name = name;
  f.shape = Shape{8, 8};
  f.tile = Shape{8, 8};
  f.anchors = std::move(anchors);
  return f;
}

TEST(AnchorGraph, AcceptsDagsRejectsCyclesAndDangles) {
  // Diamond DAG: D -> B -> A, D -> C -> A.
  EXPECT_NO_THROW(validate_anchor_graph(
      {synthetic_field("A", {}), synthetic_field("B", {"A"}),
       synthetic_field("C", {"A"}), synthetic_field("D", {"B", "C"})}));

  // Two-cycle.
  EXPECT_THROW(validate_anchor_graph({synthetic_field("A", {"B"}),
                                      synthetic_field("B", {"A"})}),
               CorruptStream);

  // Self-loop.
  EXPECT_THROW(validate_anchor_graph({synthetic_field("A", {"A"})}),
               CorruptStream);

  // Dangling anchor reference.
  EXPECT_THROW(validate_anchor_graph({synthetic_field("A", {"missing"})}),
               CorruptStream);

  // Shape mismatch between target and anchor.
  auto big = synthetic_field("B", {"A"});
  big.shape = Shape{16, 16};
  EXPECT_THROW(validate_anchor_graph({synthetic_field("A", {}), big}),
               CorruptStream);
}

// -- Tile cache --------------------------------------------------------------

TEST(TileCacheTest, ServesBitIdenticalTilesAndCountsHits) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  TileCache cache(TileCacheConfig{8u << 20, 4});
  const std::uint64_t id = cache.add_archive(reader);

  const ArchiveFieldInfo& info = *reader->find("f_sz");
  const Field direct = reader->read_tile(info, 3, {});
  const auto cached = cache.get(id, "f_sz", 3);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->array(), direct.array());

  // Second get is a hit returning the same object.
  const auto again = cache.get(id, "f_sz", 3);
  EXPECT_EQ(again.get(), cached.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  EXPECT_THROW(cache.get(id, "nope", 0), InvalidArgument);
  EXPECT_THROW(cache.get(id, "f_sz", 1u << 20), InvalidArgument);
  EXPECT_THROW(cache.get(id + 100, "f_sz", 0), InvalidArgument);
}

TEST(TileCacheTest, SingleFlightDecodesColdTileOnce) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  TileCache cache(TileCacheConfig{8u << 20, 4});
  const std::uint64_t id = cache.add_archive(reader);

  constexpr int kThreads = 8;
  std::atomic<int> at_gate{0};
  std::vector<std::shared_ptr<const Field>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Spin barrier so every thread requests the cold tile together.
      at_gate.fetch_add(1);
      while (at_gate.load() < kThreads) std::this_thread::yield();
      results[i] = cache.get(id, "f_interp", 2);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(results[i].get(), results[0].get()) << "thread " << i;
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u) << "cold tile must decode exactly once";
  EXPECT_EQ(stats.hits + stats.inflight_waits,
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(results[0]->array(),
            reader->read_tile(*reader->find("f_interp"), 2, {}).array());
}

TEST(TileCacheTest, LruEvictsAtTinyBudget) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  // Budget for roughly three 32x32 tiles; one shard so LRU order is global.
  const std::size_t tile_bytes = 32 * 32 * sizeof(float);
  TileCache cache(TileCacheConfig{3 * tile_bytes + 512, 1});
  const std::uint64_t id = cache.add_archive(reader);

  for (std::size_t t = 0; t < 6; ++t) cache.get(id, "f_sz", t);
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 6u);
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, 3 * tile_bytes + 512);
  EXPECT_LT(stats.entries, 6u);

  // Tile 0 was the coldest; it must have been evicted and re-decode.
  cache.get(id, "f_sz", 0);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 7u);

  // The most recent tile (5) must still be resident.
  cache.get(id, "f_sz", 5);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TileCacheTest, CrossFieldAnchorsResolveThroughCache) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_cross_field_archive(storage);
  TileCache cache(TileCacheConfig{8u << 20, 2});
  const std::uint64_t id = cache.add_archive(reader);

  const ArchiveFieldInfo& tgt = *reader->find("TGT");
  const Field direct = reader->read_tile(tgt, 1, {});
  const auto cached = cache.get(id, "TGT", 1);
  EXPECT_EQ(cached->array(), direct.array());

  // Decoding the target tile populated its anchor tile too (2 misses: the
  // target and one A0 tile — same grid geometry, so exactly one).
  auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);

  // The anchor's tile is now a hit for direct anchor reads.
  cache.get(id, "A0", 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TileCacheTest, InvalidateDropsPositiveAndNegativeEntriesOfOneField) {
  std::vector<std::uint8_t> storage;
  make_multi_codec_archive(storage);
  // Poison one f_sz tile so the field accrues a negative entry too.
  {
    const ArchiveReader clean = ArchiveReader::open_memory(storage);
    const ArchiveTileInfo& t = clean.find("f_sz")->tiles[1];
    storage[t.offset + t.size / 2] ^= 0x10;
  }
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(storage));
  TileCacheConfig config{8u << 20, 4};
  config.negative_ttl_ms = 60'000;  // would pin the error for the whole test
  TileCache cache(config);
  const std::uint64_t id = cache.add_archive(reader);

  const auto t0 = cache.get(id, "f_sz", 0);
  const auto t3 = cache.get(id, "f_sz", 3);
  const auto other = cache.get(id, "f_classic", 0);
  EXPECT_THROW(cache.get(id, "f_sz", 1), CorruptStream);
  EXPECT_THROW(cache.get(id, "f_sz", 1), CorruptStream);  // negative hit
  ASSERT_EQ(cache.stats().entries, 3u);
  ASSERT_EQ(cache.stats().negative_entries, 1u);
  ASSERT_EQ(cache.stats().misses, 4u);
  ASSERT_EQ(cache.stats().negative_hits, 1u);

  // f_sz is field index 0; the sweep drops its two cached tiles AND the
  // poisoned entry — a re-ingested field must not serve a stale backoff
  // any more than stale bytes — and touches nothing else.
  EXPECT_EQ(cache.invalidate(id, 0), 3u);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().negative_entries, 0u);

  // The untouched field is still warm; f_sz decodes from scratch.
  EXPECT_EQ(cache.get(id, "f_classic", 0).get(), other.get());
  const auto t0b = cache.get(id, "f_sz", 0);
  ASSERT_NE(t0b, nullptr);
  EXPECT_EQ(t0b->array(), t0->array());
  EXPECT_NE(t0b.get(), t0.get());
  EXPECT_THROW(cache.get(id, "f_sz", 1), CorruptStream);  // fresh attempt
  EXPECT_EQ(cache.stats().misses, 6u);
  EXPECT_EQ(cache.stats().negative_entries, 1u);

  // Per-tile variant: drops exactly the named entry (t3 went with the
  // field-level sweep and was never re-fetched).
  EXPECT_EQ(cache.invalidate_tile(id, 0, 0), 1u);
  EXPECT_EQ(cache.stats().entries, 1u);  // f_classic 0 alone
  (void)t3;
}

TEST(TileCacheTest, UpdateArchiveKeepsUnchangedFieldsWarm) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  TileCache cache(TileCacheConfig{8u << 20, 4});
  const std::uint64_t id = cache.add_archive(reader);
  const auto warm = cache.get(id, "f_sz", 3);

  // Append an epoch in memory and swap the reader under the same id.
  VectorSink sink(storage);
  ArchiveAppender appender(sink, *reader);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{32, 32};
  appender.append_field(smooth_field("fresh", Shape{70, 90}, 99), opts);
  appender.finish_epoch();
  const std::vector<std::uint8_t> bytes = sink.take();
  auto fresh = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_memory(bytes));
  cache.update_archive(id, fresh);

  // Field indices are append-stable, so the warm tile is still a hit —
  // the same object, no re-decode.
  EXPECT_EQ(cache.get(id, "f_sz", 3).get(), warm.get());
  EXPECT_EQ(cache.stats().hits, 1u);

  // The appended field decodes through the swapped reader.
  const auto nf = cache.get(id, "fresh", 0);
  ASSERT_NE(nf, nullptr);
  EXPECT_EQ(nf->array(),
            fresh->read_tile(*fresh->find("fresh"), 0, {}).array());

  EXPECT_THROW(cache.update_archive(id + 7, fresh), InvalidArgument);
}

// -- Service endpoints (no sockets) ------------------------------------------

class ServiceRegionPerCodec : public ::testing::TestWithParam<const char*> {};

TEST_P(ServiceRegionPerCodec, ResponseBytesMatchDirectReadRegion) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  ArchiveService service(reader);
  const std::string field = GetParam();

  // Tile-interior, tile-straddling, and edge-clipped (ragged tile) regions.
  const struct {
    const char* lo;
    const char* hi;
    std::size_t lo_v[2], hi_v[2];
  } cases[] = {
      {"34,36", "60,62", {34, 36}, {60, 62}},
      {"0,0", "70,90", {0, 0}, {70, 90}},
      {"65,80", "70,90", {65, 80}, {70, 90}},
      {"31,31", "33,33", {31, 31}, {33, 33}},
  };
  for (const auto& c : cases) {
    const HttpResponse resp =
        service.handle(region_request(field, c.lo, c.hi));
    ASSERT_EQ(resp.status, 200) << resp.body;
    EXPECT_EQ(resp.content_type, "application/octet-stream");
    const Field direct = reader->read_region(
        field, std::span<const std::size_t>(c.lo_v, 2),
        std::span<const std::size_t>(c.hi_v, 2));
    EXPECT_EQ(resp.body, field_bytes(direct))
        << field << " [" << c.lo << ") x [" << c.hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, ServiceRegionPerCodec,
                         ::testing::Values("f_sz", "f_classic", "f_interp",
                                           "f_zfp"));

TEST(Service, CrossFieldRegionMatchesDirectReadRegion) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_cross_field_archive(storage);
  ArchiveService service(reader);

  const HttpResponse resp =
      service.handle(region_request("TGT", "10,12", "30,40"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  const std::size_t lo[] = {10, 12}, hi[] = {30, 40};
  EXPECT_EQ(resp.body, field_bytes(reader->read_region("TGT", lo, hi)));
  EXPECT_GT(service.cache().stats().entries, 0u);
}

TEST(Service, ConcurrentColdRegionRequestsAgreeWithDirectRead) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_cross_field_archive(storage);
  ArchiveService service(reader);
  const std::size_t lo[] = {0, 0}, hi[] = {40, 48};
  const std::string expected = field_bytes(reader->read_region("TGT", lo, hi));

  constexpr int kThreads = 6;
  std::atomic<int> at_gate{0};
  std::vector<std::string> bodies(kThreads);
  std::vector<int> statuses(kThreads, 0);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      at_gate.fetch_add(1);
      while (at_gate.load() < kThreads) std::this_thread::yield();
      const HttpResponse r =
          service.handle(region_request("TGT", "0,0", "40,48"));
      statuses[i] = r.status;
      bodies[i] = r.body;
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(statuses[i], 200);
    EXPECT_EQ(bodies[i], expected) << "thread " << i;
  }
  // Single-flight: each TGT tile and each anchor tile decoded exactly once
  // (same 16x16 grid on both fields => 2 * num_tiles misses).
  const TileGrid grid(Shape{40, 48}, Shape{16, 16});
  EXPECT_EQ(service.cache().stats().misses, 2 * grid.num_tiles());
}

TEST(Service, JsonFormatAndValidation) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  ArchiveService service(reader);

  const HttpResponse json =
      service.handle(region_request("f_sz", "0,0", "2,2", "json"));
  ASSERT_EQ(json.status, 200);
  EXPECT_EQ(json.content_type, "application/json");
  EXPECT_NE(json.body.find("\"shape\": [2,2]"), std::string::npos);
  EXPECT_NE(json.body.find("\"values\": ["), std::string::npos);

  // /fields lists every field with its geometry.
  HttpRequest fields_req;
  fields_req.method = "GET";
  fields_req.path = "/fields";
  const HttpResponse fields = service.handle(fields_req);
  ASSERT_EQ(fields.status, 200);
  for (const char* name : {"f_sz", "f_classic", "f_interp", "f_zfp"})
    EXPECT_NE(fields.body.find(name), std::string::npos);
  EXPECT_NE(fields.body.find("\"shape\": [70,90]"), std::string::npos);

  // Bad requests answer 4xx, never throw.
  EXPECT_EQ(service.handle(region_request("nope", "0,0", "2,2")).status, 404);
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "99,99")).status,
            400);
  EXPECT_EQ(service.handle(region_request("f_sz", "5,5", "5,5")).status, 400);
  EXPECT_EQ(service.handle(region_request("f_sz", "0", "2,2")).status, 400);
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0,0", "2,2,2")).status,
            400);
  EXPECT_EQ(service.handle(region_request("f_sz", "a,b", "2,2")).status, 400);
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "2,2", "xml")).status,
            400);
  HttpRequest post = region_request("f_sz", "0,0", "2,2");
  post.method = "POST";
  EXPECT_EQ(service.handle(post).status, 405);
}

TEST(Service, RegionResponseSizeIsCapped) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  server::ServiceConfig config;
  config.max_region_values = 1000;  // 70x90 field = 6300 values
  config.max_json_values = 16;
  ArchiveService service(reader, config);

  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "70,90")).status,
            413);
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "5,5", "json"))
                .status,
            413);
  // Within the caps both formats still serve.
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "20,20")).status,
            200);
  EXPECT_EQ(service.handle(region_request("f_sz", "0,0", "4,4", "json"))
                .status,
            200);
}

TEST(Service, RegionEtagIsStrongAndStable) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_multi_codec_archive(storage);
  ArchiveService service(reader);

  auto etag_of = [](const HttpResponse& r) {
    for (const auto& [n, v] : r.headers)
      if (n == "ETag") return v;
    return std::string();
  };

  const auto r1 = service.handle(region_request("f_sz", "10,20", "50,70"));
  ASSERT_EQ(r1.status, 200);
  const std::string etag = etag_of(r1);
  ASSERT_FALSE(etag.empty());
  ASSERT_EQ(etag.front(), '"');
  ASSERT_EQ(etag.back(), '"');

  // Same query -> same tag; different geometry or format -> different tag.
  EXPECT_EQ(etag_of(service.handle(region_request("f_sz", "10,20", "50,70"))),
            etag);
  EXPECT_NE(etag_of(service.handle(region_request("f_sz", "10,20", "50,71"))),
            etag);
  EXPECT_NE(etag_of(service.handle(
                region_request("f_sz", "10,20", "50,70", "json"))),
            etag);

  // If-None-Match with the tag answers 304 with no body and no decode.
  HttpRequest req = region_request("f_sz", "10,20", "50,70");
  req.headers.emplace_back("If-None-Match", etag);
  const auto not_modified = service.handle(req);
  EXPECT_EQ(not_modified.status, 304);
  EXPECT_TRUE(not_modified.body.empty());
  EXPECT_EQ(etag_of(not_modified), etag);

  // A list of tags and the * wildcard both match per RFC 9110.
  req.headers.back().second = "\"deadbeef\", " + etag;
  EXPECT_EQ(service.handle(req).status, 304);
  req.headers.back().second = "*";
  EXPECT_EQ(service.handle(req).status, 304);
  // A non-matching tag serves the full response.
  req.headers.back().second = "\"deadbeef\"";
  EXPECT_EQ(service.handle(req).status, 200);
}

TEST(Service, CrossFieldRegionEtagFoldsAnchorTiles) {
  std::vector<std::uint8_t> storage;
  const auto reader = make_cross_field_archive(storage);
  ArchiveService service(reader);

  auto etag_of = [](const HttpResponse& r) {
    for (const auto& [n, v] : r.headers)
      if (n == "ETag") return v;
    return std::string();
  };

  // Cross-field regions revalidate like any other (the tag folds the
  // anchor closure's tile CRCs — response bytes depend on anchor bodies
  // too, so a target-tiles-only tag could 304 stale data after an anchor
  // re-encode).
  const auto r1 = service.handle(region_request("TGT", "4,4", "20,28"));
  ASSERT_EQ(r1.status, 200);
  const std::string etag = etag_of(r1);
  ASSERT_FALSE(etag.empty());
  EXPECT_EQ(etag_of(service.handle(region_request("TGT", "4,4", "20,28"))),
            etag);
  HttpRequest req = region_request("TGT", "4,4", "20,28");
  req.headers.emplace_back("If-None-Match", etag);
  const auto revalidated = service.handle(req);
  EXPECT_EQ(revalidated.status, 304);
  EXPECT_TRUE(revalidated.body.empty());
}

// -- HTTP over real loopback sockets -----------------------------------------

struct LoopbackServer {
  std::vector<std::uint8_t> storage;
  std::shared_ptr<const ArchiveReader> reader;
  std::unique_ptr<ArchiveService> service;
  std::unique_ptr<HttpServer> http;

  LoopbackServer() {
    reader = make_multi_codec_archive(storage);
    service = std::make_unique<ArchiveService>(reader);
    server::HttpConfig config;
    config.max_request_bytes = 16u << 10;
    http = std::make_unique<HttpServer>(
        config,
        [this](const HttpRequest& r) { return service->handle(r); });
    http->start();
  }
  ~LoopbackServer() { http->stop(); }
  std::uint16_t port() const { return http->port(); }
};

TEST(Http, ServesEndpointsOverLoopback) {
  LoopbackServer s;
  HttpClient client("127.0.0.1", s.port());

  EXPECT_EQ(client.get("/healthz").status, 200);

  const auto fields = client.get("/fields");
  EXPECT_EQ(fields.status, 200);
  EXPECT_EQ(fields.content_type, "application/json");
  EXPECT_NE(fields.body.find("f_interp"), std::string::npos);

  // The acceptance pin: HTTP region bytes == ArchiveReader::read_region.
  const auto region = client.get("/field/f_sz/region?lo=10,20&hi=50,70");
  ASSERT_EQ(region.status, 200);
  const std::size_t lo[] = {10, 20}, hi[] = {50, 70};
  EXPECT_EQ(region.body, field_bytes(s.reader->read_region("f_sz", lo, hi)));

  // Repeat request is served from cache, still identical.
  const auto warm = client.get("/field/f_sz/region?lo=10,20&hi=50,70");
  EXPECT_EQ(warm.body, region.body);
  EXPECT_GT(s.service->cache().stats().hits, 0u);

  const auto stats = client.get("/stats");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"cache\""), std::string::npos);

  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/field/f_sz/region?lo=0,0&hi=999,999").status, 400);

  const auto hs = s.http->stats();
  EXPECT_GE(hs.requests, 7u);
  EXPECT_EQ(hs.bad_requests, 0u);
}

TEST(Http, LegacyStatsShapeIsPinned) {
  // The legacy /stats body is a frozen contract — dashboards parse these
  // exact keys out of the pretty-printed layout. The registry migration
  // behind it (PR 8) must never change a byte of the shape.
  std::vector<std::uint8_t> storage;
  ArchiveService service(make_multi_codec_archive(storage));
  HttpRequest req;
  req.method = "GET";
  req.path = "/field/f_sz/region";
  req.query = "lo=10,20&hi=50,70";
  ASSERT_EQ(service.handle(req).status, 200);
  ASSERT_EQ(service.handle(req).status, 200);  // warm repeat: a cache hit

  HttpRequest stats_req;
  stats_req.method = "GET";
  stats_req.path = "/stats";
  const auto stats = service.handle(stats_req);
  ASSERT_EQ(stats.status, 200);
  const std::string& body = stats.body;
  for (const char* pin : {
           "{\n  \"requests\": 3,\n",
           "\"region_requests\": 2,\n",
           "\"client_errors\": 0,\n",
           "\"not_modified\": 0,\n",
           "\"degraded_requests\": 0,\n",
           "\"failed_regions\": 0,\n",
           "\"deadline_exceeded\": 0,\n",
           "\"ingest_requests\": 0,\n",
           "\"ingest_bytes\": 0,\n",
           "\"ingest_errors\": 0,\n",
           "\"ingest_epochs\": 0,\n",
           "\"ready\": true,\n",
           "  \"cache\": {\n    \"hits\": ",
           "\"misses\": 6,\n",       // one decode per covered 32x32 tile
           "\"evictions\": 0,\n",
           "\"inflight_waits\": 0,\n",
           "\"decode_errors\": 0,\n",
           "\"negative_hits\": 0,\n",
           "\"negative_entries\": 0,\n",
           "\"entries\": 6,\n",
           "\"capacity_bytes\": ",
       })
    EXPECT_NE(body.find(pin), std::string::npos) << "missing pin: " << pin
                                                 << "\nbody:\n" << body;
  EXPECT_EQ(body.find("\"bytes_served\": 0"), std::string::npos);
  EXPECT_EQ(body.back(), '\n');
}

TEST(Http, ConditionalGetOverLoopback) {
  LoopbackServer s;
  HttpClient client("127.0.0.1", s.port());

  const auto cold = client.get("/field/f_sz/region?lo=10,20&hi=50,70");
  ASSERT_EQ(cold.status, 200);
  const std::string* etag = cold.header("ETag");
  ASSERT_NE(etag, nullptr);

  // Revalidation with the tag costs a 304 and no region bytes.
  const auto revalidated = client.get("/field/f_sz/region?lo=10,20&hi=50,70",
                                      {{"If-None-Match", *etag}});
  EXPECT_EQ(revalidated.status, 304);
  EXPECT_TRUE(revalidated.body.empty());
  const std::string* etag2 = revalidated.header("ETag");
  ASSERT_NE(etag2, nullptr);
  EXPECT_EQ(*etag2, *etag);

  // A stale tag re-serves the full (bit-identical) response.
  const auto stale = client.get("/field/f_sz/region?lo=10,20&hi=50,70",
                                {{"If-None-Match", "\"00000000\""}});
  EXPECT_EQ(stale.status, 200);
  EXPECT_EQ(stale.body, cold.body);

  // The stats endpoint accounts the 304s.
  const auto stats = client.get("/stats");
  EXPECT_NE(stats.body.find("\"not_modified\": 1"), std::string::npos);
}

// -- Live ingest (PUT /field/<name>) -----------------------------------------

std::string f32_body(const std::vector<float>& values) {
  return std::string(reinterpret_cast<const char*>(values.data()),
                     values.size() * sizeof(float));
}

TEST(Http, LiveIngestAppendsEpochsOverLoopback) {
  const std::string path = ::testing::TempDir() + "xfc_server_ingest." +
                           std::to_string(::getpid()) + ".xfa";
  std::remove(path.c_str());
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    ArchiveFieldOptions opts;
    opts.eb = ErrorBound::relative(1e-3);
    opts.tile = Shape{32, 32};
    writer.add_field(smooth_field("base", Shape{70, 90}, 7), opts);
    writer.finish();
  }
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_file(path));
  server::ServiceConfig sconfig;
  sconfig.archive_path = path;
  ArchiveService service(reader, sconfig);
  server::HttpConfig hconfig;
  hconfig.max_request_bytes = 1u << 20;
  HttpServer http(hconfig, [&service](const HttpRequest& r) {
    return service.handle(r);
  });
  http.start();
  HttpClient client("127.0.0.1", http.port());

  // Warm the base field: ingest of other fields must not disturb it.
  const auto base_cold = client.get("/field/base/region?lo=0,0&hi=32,32");
  ASSERT_EQ(base_cold.status, 200);

  std::vector<float> values(24 * 16);
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<float>(i % 31) * 0.5f;
  const std::string target = "/field/live?shape=24,16&mode=abs&eb=0.01&tile=16,16";
  const auto created = client.put(target, f32_body(values));
  ASSERT_EQ(created.status, 201) << created.body;
  EXPECT_NE(created.body.find("\"epoch\": 1"), std::string::npos);
  EXPECT_NE(created.body.find("\"created\": true"), std::string::npos);

  const auto live1 = client.get("/field/live/region?lo=0,0&hi=24,16");
  ASSERT_EQ(live1.status, 200);
  ASSERT_EQ(live1.body.size(), values.size() * sizeof(float));
  const float* got = reinterpret_cast<const float*>(live1.body.data());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_NEAR(got[i], values[i], 0.0101f) << i;
  const std::string* etag1 = live1.header("ETag");
  ASSERT_NE(etag1, nullptr);
  const std::string etag_created = *etag1;

  // Replace: same name, shifted values — next epoch, fresh bytes, fresh
  // ETag. The invalidation must evict the old tiles, or these reads would
  // serve the superseded epoch from cache.
  for (float& v : values) v += 5.0f;
  const auto replaced = client.put(target, f32_body(values));
  ASSERT_EQ(replaced.status, 200) << replaced.body;
  EXPECT_NE(replaced.body.find("\"epoch\": 2"), std::string::npos);
  EXPECT_NE(replaced.body.find("\"created\": false"), std::string::npos);
  const auto live2 = client.get("/field/live/region?lo=0,0&hi=24,16");
  ASSERT_EQ(live2.status, 200);
  const float* got2 = reinterpret_cast<const float*>(live2.body.data());
  for (std::size_t i = 0; i < values.size(); ++i)
    ASSERT_NEAR(got2[i], values[i], 0.0101f) << i;
  const std::string* etag2 = live2.header("ETag");
  ASSERT_NE(etag2, nullptr);
  EXPECT_NE(*etag2, etag_created);

  // The base field survived both ingests byte-identically (its indices are
  // append-stable; nothing invalidated its cache entries).
  const auto base_warm = client.get("/field/base/region?lo=0,0&hi=32,32");
  EXPECT_EQ(base_warm.body, base_cold.body);

  // Malformed ingests answer 400 without touching the archive.
  EXPECT_EQ(client.put("/field/x?shape=8,8&eb=0.01", "abc").status, 400);
  EXPECT_EQ(client.put("/field/x?eb=0.01", "abcd").status, 400);
  EXPECT_EQ(client.put("/field/x?shape=4&mode=banana&eb=0.01",
                       std::string(16, '\0'))
                .status,
            400);

  // Drain refuses new writes before anything else.
  service.set_ready(false);
  const auto drained =
      client.put("/field/late?shape=4&mode=abs&eb=0.01", std::string(16, '\0'));
  EXPECT_EQ(drained.status, 503);
  EXPECT_NE(drained.header("Retry-After"), nullptr);
  service.set_ready(true);

  const auto stats = client.get("/stats");
  EXPECT_NE(stats.body.find("\"ingest_epochs\": 2"), std::string::npos);
  EXPECT_NE(stats.body.find("\"ingest_errors\": 4"), std::string::npos);
  http.stop();

  // Offline reopen: the file carries every sealed epoch, scrub-clean.
  const ArchiveReader check = ArchiveReader::open_file(path);
  EXPECT_EQ(check.epoch_count(), 3u);
  EXPECT_EQ(check.fields().size(), 2u);
  EXPECT_TRUE(check.scrub().clean());
  std::remove(path.c_str());
}

TEST(Http, IngestDisabledAnswers403) {
  LoopbackServer s;  // no archive_path configured
  HttpClient client("127.0.0.1", s.port());
  const auto resp = client.put("/field/x?shape=2,2&mode=abs&eb=0.01",
                               std::string(16, '\0'));
  EXPECT_EQ(resp.status, 403);
}

TEST(Service, IngestRefusesReplacingAnchoredField) {
  const std::string path = ::testing::TempDir() + "xfc_server_anchor." +
                           std::to_string(::getpid()) + ".xfa";
  std::vector<std::uint8_t> storage;
  make_cross_field_archive(storage);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(storage.data()),
              static_cast<std::streamsize>(storage.size()));
  }
  auto reader = std::make_shared<const ArchiveReader>(
      ArchiveReader::open_file(path));
  server::ServiceConfig sconfig;
  sconfig.archive_path = path;
  ArchiveService service(reader, sconfig);

  HttpRequest req;
  req.method = "PUT";
  req.path = "/field/A0";
  req.query = "shape=40,48&mode=abs&eb=0.01";
  req.body = std::string(40 * 48 * sizeof(float), '\0');
  // TGT anchors on A0: replacing A0 would break TGT's bit-exact anchor
  // reconstructions, so the ingest answers 409.
  EXPECT_EQ(service.handle(req).status, 409);

  // The cross-field target itself is fair game (nothing anchors on it);
  // the replacement is recoded with a plain codec.
  req.path = "/field/TGT";
  const auto ok = service.handle(req);
  EXPECT_EQ(ok.status, 200) << ok.body;
  std::remove(path.c_str());
}

TEST(Http, ClientHonorsRetryAfterOn503) {
  std::atomic<int> remaining{2};
  server::HttpConfig config;
  HttpServer http(config, [&remaining](const HttpRequest&) {
    if (remaining.fetch_sub(1) > 0) {
      HttpResponse resp = HttpResponse::text(503, "overloaded\n");
      resp.headers.emplace_back("Retry-After", "0");
      return resp;
    }
    return HttpResponse::text(200, "ok\n");
  });
  http.start();

  // The default client surfaces the 503: overload-shedding tests (and
  // callers that want to make their own pushback decisions) must see it.
  {
    HttpClient client("127.0.0.1", http.port());
    EXPECT_EQ(client.get("/x").status, 503);
  }

  // An opt-in client consumes the server's Retry-After and re-issues.
  remaining.store(2);
  server::HttpClientConfig cconfig;
  cconfig.retry_503 = true;
  cconfig.max_retries = 3;
  HttpClient client("127.0.0.1", http.port(), cconfig);
  const auto resp = client.get("/x");
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok\n");

  // A 503 storm deeper than the retry budget surfaces the last 503.
  remaining.store(100);
  EXPECT_EQ(client.get("/x").status, 503);
  http.stop();
}

TEST(Http, KeepAliveServesManyRequestsOnOneConnection) {
  LoopbackServer s;
  HttpClient client("127.0.0.1", s.port());
  for (int i = 0; i < 32; ++i)
    ASSERT_EQ(client.get("/healthz").status, 200) << "request " << i;
  // One client, one connection: keep-alive actually held.
  EXPECT_EQ(s.http->stats().accepted, 1u);
}

TEST(Http, PipelinedRequestsEachGetAResponse) {
  LoopbackServer s;
  const std::string two =
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  const std::string reply = server::http_raw_exchange("127.0.0.1", s.port(), two);
  std::size_t count = 0, pos = 0;
  while ((pos = reply.find("HTTP/1.1 200", pos)) != std::string::npos) {
    ++count;
    pos += 1;
  }
  EXPECT_EQ(count, 2u);
}

TEST(Http, FuzzMalformedRequestsAnswerCleanErrorsAndServerSurvives) {
  LoopbackServer s;

  const struct {
    const char* name;
    std::string payload;
    const char* expect_prefix;  // "" = connection close with no bytes is ok
  } cases[] = {
      {"not-http", "garbage\r\n\r\n", "HTTP/1.1 400"},
      {"spaces-only", "   \r\n\r\n", "HTTP/1.1 400"},
      {"bad-version", "GET / HTTP/9.9\r\n\r\n", "HTTP/1.1 505"},
      {"not-http-at-all", "SSH-2.0-OpenSSH_9.0\r\n\r\n", "HTTP/1.1 400"},
      {"ctl-in-method", std::string("G\x01T / HTTP/1.1\r\n\r\n"),
       "HTTP/1.1 400"},
      {"no-target", "GET HTTP/1.1\r\n\r\n", "HTTP/1.1 400"},
      {"relative-target", "GET nope HTTP/1.1\r\n\r\n", "HTTP/1.1 400"},
      {"bad-escape", "GET /%zz HTTP/1.1\r\n\r\n", "HTTP/1.1 400"},
      {"obs-fold", "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", "HTTP/1.1 400"},
      {"colonless-header", "GET / HTTP/1.1\r\nnope\r\n\r\n", "HTTP/1.1 400"},
      {"bad-content-length",
       "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n", "HTTP/1.1 400"},
      {"huge-content-length",
       "GET / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n", "HTTP/1.1 413"},
      {"chunked", "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       "HTTP/1.1 501"},
      {"dup-content-length",
       "GET / HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 4\r\n\r\n",
       "HTTP/1.1 400"},
      {"long-target",
       "GET /" + std::string(20000, 'a') + " HTTP/1.1\r\n\r\n",
       "HTTP/1.1 414"},
      {"oversized-headers",
       "GET / HTTP/1.1\r\n" +
           [] {
             std::string h;
             for (int i = 0; i < 200; ++i)
               h += "X-Pad-" + std::to_string(i) + ": " +
                    std::string(400, 'y') + "\r\n";
             return h;
           }() +
           "\r\n",
       "HTTP/1.1 431"},
      {"truncated", "GET /healthz HT", ""},
      {"empty", "", ""},
      {"nul-bytes", std::string("\0\0\0\0", 4), ""},
  };

  for (const auto& c : cases) {
    const std::string reply =
        server::http_raw_exchange("127.0.0.1", s.port(), c.payload);
    if (c.expect_prefix[0] == '\0') {
      EXPECT_TRUE(reply.empty() || reply.rfind("HTTP/1.1 4", 0) == 0)
          << c.name << " got: " << reply.substr(0, 40);
    } else {
      EXPECT_EQ(reply.rfind(c.expect_prefix, 0), 0u)
          << c.name << " got: " << reply.substr(0, 40);
    }
    // The server must survive every one of these and keep serving.
    HttpClient probe("127.0.0.1", s.port());
    ASSERT_EQ(probe.get("/healthz").status, 200) << "dead after " << c.name;
  }
  EXPECT_GT(s.http->stats().bad_requests, 0u);
}

TEST(Http, ConcurrentClientsGetConsistentRegions) {
  LoopbackServer s;
  const std::size_t lo[] = {0, 0}, hi[] = {70, 90};
  const std::string expected =
      field_bytes(s.reader->read_region("f_classic", lo, hi));

  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      HttpClient client("127.0.0.1", s.port());
      for (int r = 0; r < 4; ++r) {
        const auto resp =
            client.get("/field/f_classic/region?lo=0,0&hi=70,90");
        if (resp.status != 200 || resp.body != expected) ++failures[i];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) EXPECT_EQ(failures[i], 0);

  // 70x90 over 32x32 tiles = 9 tiles; every one decoded exactly once.
  EXPECT_EQ(s.service->cache().stats().misses, 9u);
}

}  // namespace
}  // namespace xfc
