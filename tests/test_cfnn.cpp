// Tests for the CFNN module: difference transforms, normalisation, model
// construction (Table III parameter counts), training, inference.

#include <gtest/gtest.h>

#include <cmath>

#include "cfnn/cfnn.hpp"
#include "cfnn/difference.hpp"
#include "cfnn/trainer.hpp"
#include "core/rng.hpp"

namespace xfc {
namespace {

TEST(BackwardDifference, Axis0And1Of2D) {
  F32Array a(Shape{3, 3}, {1, 2, 4, 7, 11, 16, 22, 29, 37});
  const auto d0 = backward_difference(a, 0);
  const auto d1 = backward_difference(a, 1);
  // First row/column are zero by convention.
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(d0(0, j), 0.0f);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(d1(i, 0), 0.0f);
  EXPECT_EQ(d0(1, 0), 7.0f - 1.0f);
  EXPECT_EQ(d0(2, 2), 37.0f - 16.0f);
  EXPECT_EQ(d1(0, 1), 2.0f - 1.0f);
  EXPECT_EQ(d1(2, 2), 37.0f - 29.0f);
}

TEST(BackwardDifference, ThreeAxesOf3D) {
  F32Array a(Shape{2, 2, 2});
  for (std::size_t i = 0; i < 8; ++i) a[i] = static_cast<float>(i * i);
  const auto d0 = backward_difference(a, 0);
  const auto d1 = backward_difference(a, 1);
  const auto d2 = backward_difference(a, 2);
  EXPECT_EQ(d0(1, 1, 1), a(1, 1, 1) - a(0, 1, 1));
  EXPECT_EQ(d1(1, 1, 1), a(1, 1, 1) - a(1, 0, 1));
  EXPECT_EQ(d2(1, 1, 1), a(1, 1, 1) - a(1, 1, 0));
  EXPECT_EQ(d0(0, 1, 1), 0.0f);
}

TEST(BackwardDifference, InvertibleByPrefixSum) {
  Rng rng(1);
  F32Array a(Shape{16});
  for (auto& v : a.vec()) v = static_cast<float>(rng.uniform(-5, 5));
  const auto d = backward_difference(a, 0);
  float acc = a(0);
  for (std::size_t i = 1; i < 16; ++i) {
    acc += d(i);
    EXPECT_NEAR(acc, a(i), 1e-4);
  }
}

TEST(SliceGeometry, TwoAndThreeD) {
  const auto g2 = slice_geometry(Shape{10, 20});
  EXPECT_EQ(g2.slices, 1u);
  EXPECT_EQ(g2.height, 10u);
  EXPECT_EQ(g2.width, 20u);
  const auto g3 = slice_geometry(Shape{5, 10, 20});
  EXPECT_EQ(g3.slices, 5u);
  EXPECT_THROW(slice_geometry(Shape{7}), InvalidArgument);
}

TEST(DifferenceTensor, ChannelLayoutFieldMajorThenAxis) {
  F32Array a(Shape{4, 4}), b(Shape{4, 4});
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(2 * i);
  }
  Field fa("A", std::move(a)), fb("B", std::move(b));
  const auto t = fields_to_difference_tensor({&fa, &fb});
  EXPECT_EQ(t.n(), 1u);
  EXPECT_EQ(t.c(), 4u);  // 2 fields x 2 axes
  EXPECT_EQ(t.h(), 4u);
  EXPECT_EQ(t.w(), 4u);
  // Channel 0: A's axis-0 diff = 4 in the interior; channel 3: B's axis-1
  // diff = 2.
  EXPECT_EQ(t(0, 0, 2, 1), 4.0f);
  EXPECT_EQ(t(0, 3, 2, 2), 2.0f);
}

TEST(DifferenceTensor, MismatchedShapesRejected) {
  Field a("A", F32Array(Shape{4, 4}));
  Field b("B", F32Array(Shape{4, 5}));
  EXPECT_THROW(fields_to_difference_tensor({&a, &b}), InvalidArgument);
}

TEST(DifferenceTensor, AxisArraysRoundtrip) {
  Rng rng(2);
  Field f("F", F32Array(Shape{3, 8, 8}));
  for (auto& v : f.array().vec()) v = static_cast<float>(rng.normal());
  const auto t = fields_to_difference_tensor({&f});
  const auto axes = tensor_to_axis_arrays(t, f.shape());
  ASSERT_EQ(axes.size(), 3u);
  const auto d1 = backward_difference(f.array(), 1);
  EXPECT_EQ(axes[1].vec(), d1.vec());
}

TEST(Normalizer, FitApplyInvertRoundtrip) {
  Rng rng(3);
  nn::Tensor t(2, 3, 8, 8);
  for (auto& v : t.vec()) v = static_cast<float>(rng.normal(5.0, 3.0));
  const auto norm = ChannelNormalizer::fit(t);

  nn::Tensor u = t;
  norm.apply(u);
  // Normalised stats: mean ~0, std ~1 per channel.
  const auto check = ChannelNormalizer::fit(u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_NEAR(check.mean[c], 0.0f, 1e-3);
    EXPECT_NEAR(check.stddev[c], 1.0f, 1e-3);
  }
  norm.invert(u);
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_NEAR(u.vec()[i], t.vec()[i], 1e-3);
}

TEST(Normalizer, ConstantChannelIsSafe) {
  nn::Tensor t(1, 1, 4, 4);
  for (auto& v : t.vec()) v = 7.0f;
  const auto norm = ChannelNormalizer::fit(t);
  EXPECT_EQ(norm.stddev[0], 1.0f);  // clamped
  nn::Tensor u = t;
  norm.apply(u);
  for (auto v : u.vec()) EXPECT_EQ(v, 0.0f);
}

TEST(CfnnModel, PaperScaleParameterCounts) {
  // Paper Table III: ~32871 (3D, 3 anchors), 5270 / 4470 / 6070 (CESM).
  // Our widths land within a few percent (documented in DESIGN.md).
  const CfnnModel m3d(9, 3, CfnnConfig{120, 8, 3}, 1);
  EXPECT_NEAR(static_cast<double>(m3d.param_count()), 32871.0, 2500.0);

  const CfnnModel cldtot(6, 2, CfnnConfig{40, 10, 3}, 1);
  EXPECT_NEAR(static_cast<double>(cldtot.param_count()), 5270.0, 400.0);

  const CfnnModel lwcf(4, 2, CfnnConfig{40, 10, 3}, 1);
  EXPECT_NEAR(static_cast<double>(lwcf.param_count()), 4470.0, 400.0);

  const CfnnModel flut(8, 2, CfnnConfig{40, 10, 3}, 1);
  EXPECT_NEAR(static_cast<double>(flut.param_count()), 6070.0, 400.0);
}

TEST(CfnnModel, SaveLoadBitExactInference) {
  Rng rng(4);
  CfnnModel model(4, 2, CfnnConfig{16, 4, 3}, 99);
  nn::Tensor x(2, 4, 12, 12);
  for (auto& v : x.vec()) v = static_cast<float>(rng.normal());

  const auto y1 = model.infer(x);
  const auto bytes = model.save_bytes();
  const CfnnModel restored = CfnnModel::load_bytes(bytes);
  const auto y2 = restored.infer(x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_EQ(y1.vec()[i], y2.vec()[i]);
}

TEST(CfnnModel, InferenceShapes) {
  CfnnModel model(6, 3, CfnnConfig{8, 4, 3}, 5);
  nn::Tensor x(4, 6, 10, 14);
  const auto y = model.infer(x);
  EXPECT_EQ(y.n(), 4u);
  EXPECT_EQ(y.c(), 3u);
  EXPECT_EQ(y.h(), 10u);
  EXPECT_EQ(y.w(), 14u);
}

TEST(CfnnModel, RejectsBadGeometry) {
  EXPECT_THROW(CfnnModel(0, 2, CfnnConfig{8, 4, 3}, 1), InvalidArgument);
  EXPECT_THROW(CfnnModel(4, 2, CfnnConfig{9, 4, 3}, 1), InvalidArgument);
  CfnnModel ok(4, 2, CfnnConfig{8, 4, 3}, 1);
  nn::Tensor wrong(1, 5, 8, 8);
  EXPECT_THROW(ok.infer(wrong), InvalidArgument);
}

TEST(CfnnTraining, LossDecreasesOnLearnableRelation) {
  // Target differences are a fixed local function of anchor differences:
  // exactly what a small CNN can learn.
  Rng rng(6);
  const Shape shape{48, 48};
  Field anchor("A", F32Array(shape));
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 48; ++j)
      anchor.array()(i, j) = static_cast<float>(
          20.0 * std::sin(i / 5.0) * std::cos(j / 7.0) + rng.normal(0, 0.1));
  Field target("T", F32Array(shape));
  for (std::size_t i = 0; i < 48; ++i)
    for (std::size_t j = 0; j < 48; ++j)
      target.array()(i, j) = 0.6f * anchor.array()(i, j) + 3.0f;

  const auto inputs = fields_to_difference_tensor({&anchor});
  const auto targets = fields_to_difference_tensor({&target});

  CfnnModel model(2, 2, CfnnConfig{8, 4, 3}, 7);
  CfnnTrainOptions opt;
  opt.epochs = 12;
  opt.patches_per_epoch = 32;
  opt.patch = 16;
  opt.batch = 8;
  const auto losses = train_cfnn(model, inputs, targets, opt);
  ASSERT_EQ(losses.size(), 12u);
  EXPECT_LT(losses.back(), losses.front() * 0.8);
}

TEST(CfnnTraining, EvalLossesTrackFixedSet) {
  Rng rng(9);
  const Shape shape{40, 40};
  Field anchor("A", F32Array(shape));
  for (std::size_t i = 0; i < shape.size(); ++i)
    anchor.array()[i] = static_cast<float>(
        std::sin(static_cast<double>(i % 40) / 4.0) * 10.0);
  Field target("T", F32Array(shape));
  for (std::size_t i = 0; i < shape.size(); ++i)
    target.array()[i] = 0.7f * anchor.array()[i];

  const auto inputs = fields_to_difference_tensor({&anchor});
  const auto targets = fields_to_difference_tensor({&target});
  CfnnModel model(2, 2, CfnnConfig{8, 4, 3}, 10);
  CfnnTrainOptions opt;
  opt.epochs = 8;
  opt.patches_per_epoch = 24;
  opt.patch = 16;
  opt.batch = 8;
  opt.eval_patches = 16;
  std::vector<double> eval_losses;
  const auto train_losses = train_cfnn(model, inputs, targets, opt,
                                       &eval_losses);
  ASSERT_EQ(eval_losses.size(), opt.epochs);
  ASSERT_EQ(train_losses.size(), opt.epochs);
  // A perfectly learnable linear relation: eval loss must drop clearly.
  EXPECT_LT(eval_losses.back(), eval_losses.front() * 0.7);
}

TEST(CfnnTraining, RejectsMismatchedTensors) {
  CfnnModel model(2, 2, CfnnConfig{8, 4, 3}, 8);
  nn::Tensor in(1, 2, 16, 16), tgt(1, 2, 16, 8);
  EXPECT_THROW(train_cfnn(model, in, tgt, CfnnTrainOptions{}),
               InvalidArgument);
}

}  // namespace
}  // namespace xfc
