// Cross-checks for the lowered NN compute core: blocked SGEMM vs the naive
// reference, im2col against its index definition, and the graph's
// conv/matmul ops (im2col+GEMM forward, derived backward via
// GraphExec::backward_from) against the retained naive kernels — across odd
// shapes, groups > 1, batch > 1, and k in {1,3,5}.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.hpp"
#include "nn/conv2d.hpp"
#include "nn/gemm.hpp"
#include "nn/graph.hpp"
#include "nn/im2col.hpp"
#include "nn/layers.hpp"
#include "nn/workspace.hpp"

namespace xfc::nn {
namespace {

constexpr double kRelTol = 1e-4;

void expect_near_rel(float got, float want, const char* what, std::size_t i) {
  const double tol =
      kRelTol * std::max(1.0, std::abs(static_cast<double>(want)));
  EXPECT_NEAR(got, want, tol) << what << " mismatch at flat index " << i;
}

std::vector<float> random_vec(std::size_t n, Rng& rng, double scale = 1.0) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

Tensor random_tensor(std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w, Rng& rng) {
  Tensor t(n, c, h, w);
  for (auto& v : t.vec()) v = static_cast<float>(rng.normal());
  return t;
}

void check_sgemm(bool ta, bool tb, std::size_t m, std::size_t n,
                 std::size_t k, float alpha, float beta, Rng& rng) {
  const std::size_t lda = ta ? m : k;
  const std::size_t ldb = tb ? k : n;
  std::vector<float> a = random_vec((ta ? k : m) * lda, rng);
  std::vector<float> b = random_vec((tb ? n : k) * ldb, rng);
  std::vector<float> c0 = random_vec(m * n, rng);
  std::vector<float> c_blocked = c0, c_ref = c0;
  sgemm(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
        c_blocked.data(), n);
  sgemm_ref(ta, tb, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
            c_ref.data(), n);
  for (std::size_t i = 0; i < c_ref.size(); ++i)
    expect_near_rel(c_blocked[i], c_ref[i], "sgemm", i);
}

TEST(Sgemm, MatchesReferenceAcrossShapes) {
  Rng rng(101);
  // Odd, tiny, register-tile-straddling shapes.
  const std::size_t dims[] = {1, 2, 3, 5, 7, 8, 13, 17, 70};
  for (std::size_t m : dims)
    for (std::size_t n : dims)
      for (std::size_t k : {std::size_t{1}, std::size_t{6}, std::size_t{70}})
        check_sgemm(false, false, m, n, k, 1.0f, 0.0f, rng);
}

TEST(Sgemm, MatchesReferenceTransposed) {
  Rng rng(102);
  for (bool ta : {false, true})
    for (bool tb : {false, true})
      for (std::size_t m : {std::size_t{1}, std::size_t{9}, std::size_t{40}})
        for (std::size_t n : {std::size_t{3}, std::size_t{31}})
          check_sgemm(ta, tb, m, n, 25, 1.0f, 0.0f, rng);
}

TEST(Sgemm, AlphaBetaAccumulate) {
  Rng rng(103);
  check_sgemm(false, false, 11, 23, 17, 0.5f, 1.0f, rng);
  check_sgemm(true, false, 12, 9, 30, 2.0f, -0.5f, rng);
  check_sgemm(false, true, 7, 19, 41, 1.0f, 1.0f, rng);
}

TEST(Sgemm, BlockingBoundariesExact) {
  // Spans the KC=240 / MC=72 / NC=1024 block edges so multi-block
  // accumulation (beta0 handling) is exercised.
  Rng rng(104);
  check_sgemm(false, false, 73, 90, 250, 1.0f, 0.0f, rng);
  check_sgemm(false, false, 6, 1030, 241, 1.0f, 1.0f, rng);
}

TEST(Im2col, MatchesIndexDefinition) {
  Rng rng(105);
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{5}}) {
    const std::size_t icg = 3, H = 6, W = 7;
    const Tensor x = random_tensor(1, icg, H, W, rng);
    const std::size_t pad = k / 2;
    std::vector<float> col(icg * k * k * H * W, -42.0f);
    im2col(x.data(), icg, H, W, k, col.data());
    for (std::size_t ic = 0; ic < icg; ++ic)
      for (std::size_t ky = 0; ky < k; ++ky)
        for (std::size_t kx = 0; kx < k; ++kx)
          for (std::size_t oy = 0; oy < H; ++oy)
            for (std::size_t ox = 0; ox < W; ++ox) {
              const std::ptrdiff_t iy = static_cast<std::ptrdiff_t>(oy + ky) -
                                        static_cast<std::ptrdiff_t>(pad);
              const std::ptrdiff_t ix = static_cast<std::ptrdiff_t>(ox + kx) -
                                        static_cast<std::ptrdiff_t>(pad);
              const bool inside =
                  iy >= 0 && iy < static_cast<std::ptrdiff_t>(H) && ix >= 0 &&
                  ix < static_cast<std::ptrdiff_t>(W);
              const float want =
                  inside ? x(0, ic, static_cast<std::size_t>(iy),
                             static_cast<std::size_t>(ix))
                         : 0.0f;
              const std::size_t row = (ic * k + ky) * k + kx;
              EXPECT_EQ(col[row * H * W + oy * W + ox], want)
                  << "k=" << k << " row=" << row << " oy=" << oy
                  << " ox=" << ox;
            }
  }
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> characterises the scatter-add
  // inverse exactly (both sides are sums of the same products).
  Rng rng(106);
  const std::size_t icg = 2, H = 5, W = 6, k = 3;
  const Tensor x = random_tensor(1, icg, H, W, rng);
  const std::size_t cn = icg * k * k * H * W;
  const std::vector<float> c = random_vec(cn, rng);
  std::vector<float> col(cn);
  im2col(x.data(), icg, H, W, k, col.data());
  std::vector<float> back(icg * H * W, 0.0f);
  col2im(c.data(), icg, H, W, k, back.data());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < cn; ++i)
    lhs += static_cast<double>(col[i]) * c[i];
  for (std::size_t i = 0; i < back.size(); ++i)
    rhs += static_cast<double>(x.vec()[i]) * back[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

struct ConvCase {
  std::size_t batch, in_ch, out_ch, k, groups, h, w;
};

const ConvCase kConvCases[] = {
    {1, 1, 1, 3, 1, 5, 7},    // minimal, odd plane
    {2, 3, 4, 3, 1, 7, 9},    // batch > 1, standard
    {2, 4, 4, 3, 4, 6, 5},    // depthwise
    {1, 4, 6, 5, 2, 9, 7},    // grouped, k=5
    {3, 5, 3, 1, 1, 4, 11},   // pointwise, batch > 1
    {2, 6, 4, 3, 2, 8, 8},    // grouped, even plane
    {1, 2, 2, 5, 1, 5, 5},    // kernel as large as the plane
    {2, 8, 8, 3, 2, 33, 17},  // straddles GEMM register tiles
    {1, 2, 3, 5, 1, 4, 1},    // plane narrower than the padding (w <= pad)
    {1, 1, 2, 5, 1, 1, 6},    // single-row plane, wide halo
};

TEST(Conv2DGemm, ForwardMatchesNaiveReference) {
  for (const ConvCase& cc : kConvCases) {
    Rng rng(200 + cc.in_ch + cc.out_ch + cc.k);
    Conv2D conv(cc.in_ch, cc.out_ch, cc.k, cc.groups, /*bias=*/true, rng);
    Tensor x = random_tensor(cc.batch, cc.in_ch, cc.h, cc.w, rng);

    Graph g(Graph::Mode::kInfer);
    const NodeRef in = g.input({cc.batch, cc.in_ch, cc.h, cc.w});
    const NodeRef out = conv.append(g, in);
    GraphExec exec(g, tls_workspace());
    exec.bind(in, x.data());
    exec.forward();
    const float* got = exec.value(out);

    const Tensor want = conv2d_ref_forward(x, conv.weight(),
                                           conv.bias().data(), cc.out_ch,
                                           cc.k, cc.groups);
    ASSERT_EQ(g.shape(out).size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i)
      expect_near_rel(got[i], want.vec()[i], "conv forward", i);
  }
}

TEST(Conv2DGemm, BackwardMatchesNaiveReference) {
  for (const ConvCase& cc : kConvCases) {
    Rng rng(300 + cc.in_ch + cc.out_ch + cc.k);
    Conv2D conv(cc.in_ch, cc.out_ch, cc.k, cc.groups, /*bias=*/true, rng);
    Tensor x = random_tensor(cc.batch, cc.in_ch, cc.h, cc.w, rng);
    Tensor go = random_tensor(cc.batch, cc.out_ch, cc.h, cc.w, rng);

    Graph g(Graph::Mode::kTrain);
    const NodeRef in =
        g.input({cc.batch, cc.in_ch, cc.h, cc.w}, /*needs_grad=*/true);
    const NodeRef out = conv.append(g, in);
    GraphExec exec(g, tls_workspace());
    exec.bind(in, x.data());
    exec.forward();
    g.zero_grad();
    exec.backward_from(out, go.data());

    // Graph params in registration order: weight then bias.
    auto params = g.params();
    ASSERT_EQ(params.size(), 2u);
    const std::size_t icg = cc.in_ch / cc.groups;
    std::vector<float> gw_ref(cc.out_ch * icg * cc.k * cc.k, 0.0f);
    std::vector<float> gb_ref(cc.out_ch, 0.0f);
    const Tensor gx_ref = conv2d_ref_backward(
        x, go, conv.weight(), cc.out_ch, cc.k, cc.groups, gw_ref,
        gb_ref.data());

    const float* gx = exec.grad(in);
    ASSERT_NE(gx, nullptr);
    for (std::size_t i = 0; i < gx_ref.size(); ++i)
      expect_near_rel(gx[i], gx_ref.vec()[i], "conv dX", i);
    for (std::size_t i = 0; i < gw_ref.size(); ++i)
      expect_near_rel((*params[0].grad)[i], gw_ref[i], "conv dW", i);
    for (std::size_t i = 0; i < gb_ref.size(); ++i)
      expect_near_rel((*params[1].grad)[i], gb_ref[i], "conv dB", i);
  }
}

TEST(LinearGemm, ForwardBackwardMatchNaiveReference) {
  Rng rng(400);
  const std::size_t B = 5, in_f = 13, out_f = 7;
  Linear lin(in_f, out_f, /*bias=*/true, rng);
  Tensor x = random_tensor(B, in_f, 1, 1, rng);
  Tensor go = random_tensor(B, out_f, 1, 1, rng);

  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({B, in_f, 1, 1}, /*needs_grad=*/true);
  const NodeRef out = lin.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();

  const float* y = exec.value(out);
  const std::vector<float>& w = lin.weight();
  const std::vector<float>& bias = lin.bias();
  for (std::size_t b = 0; b < B; ++b)
    for (std::size_t o = 0; o < out_f; ++o) {
      double acc = bias[o];
      for (std::size_t i = 0; i < in_f; ++i)
        acc += static_cast<double>(w[o * in_f + i]) * x.vec()[b * in_f + i];
      expect_near_rel(y[b * out_f + o], static_cast<float>(acc),
                      "linear forward", b * out_f + o);
    }

  g.zero_grad();
  exec.backward_from(out, go.data());
  auto params = g.params();
  ASSERT_EQ(params.size(), 2u);
  const float* gx = exec.grad(in);
  ASSERT_NE(gx, nullptr);
  for (std::size_t b = 0; b < B; ++b)
    for (std::size_t i = 0; i < in_f; ++i) {
      double acc = 0.0;
      for (std::size_t o = 0; o < out_f; ++o)
        acc += static_cast<double>(go.vec()[b * out_f + o]) * w[o * in_f + i];
      expect_near_rel(gx[b * in_f + i], static_cast<float>(acc), "linear dX",
                      b * in_f + i);
    }
  for (std::size_t o = 0; o < out_f; ++o) {
    for (std::size_t i = 0; i < in_f; ++i) {
      double acc = 0.0;
      for (std::size_t b = 0; b < B; ++b)
        acc += static_cast<double>(go.vec()[b * out_f + o]) *
               x.vec()[b * in_f + i];
      expect_near_rel((*params[0].grad)[o * in_f + i],
                      static_cast<float>(acc), "linear dW", o * in_f + i);
    }
    double gb = 0.0;
    for (std::size_t b = 0; b < B; ++b) gb += go.vec()[b * out_f + o];
    expect_near_rel((*params[1].grad)[o], static_cast<float>(gb), "linear dB",
                    o);
  }
}

TEST(WorkspaceArena, ReusesSlabsAcrossScopes) {
  Workspace ws;
  float* first = nullptr;
  {
    const ScratchScope scope(ws);
    first = ws.acquire(1024);
    ASSERT_NE(first, nullptr);
  }
  {
    const ScratchScope scope(ws);
    // Same acquire order, same (not-reallocated) slab.
    EXPECT_EQ(ws.acquire(1024), first);
    // Nested scope stacks on top instead of clobbering.
    float* inner_before;
    {
      const ScratchScope inner(ws);
      inner_before = ws.acquire(16);
      EXPECT_NE(inner_before, first);
    }
    {
      const ScratchScope inner(ws);
      EXPECT_EQ(ws.acquire(16), inner_before);
    }
  }
  EXPECT_GE(ws.floats_reserved(), 1024u + 16u);
  ws.clear();
  EXPECT_EQ(ws.floats_reserved(), 0u);
}

TEST(WorkspaceArena, GrowsSlabWhenAskedForMore) {
  Workspace ws;
  const ScratchScope scope(ws);
  ws.acquire(8);
  ws.rewind(0);
  float* q = ws.acquire(4096);  // same slot, grown
  // After growth the slab must hold 4096 writable floats.
  for (std::size_t i = 0; i < 4096; ++i) q[i] = 1.0f;
  EXPECT_GE(ws.floats_reserved(), 4096u);
}

TEST(WorkspaceArena, TypedAcquiresShareTheSlabSequence) {
  // The decode paths take bytes and int64 scratch from the same arena the
  // NN path takes floats from; acquire order, not element type, names the
  // slab.
  Workspace ws;
  std::uint8_t* bytes = nullptr;
  std::int64_t* words = nullptr;
  {
    const ScratchScope scope(ws);
    bytes = ws.acquire_bytes(1000);
    words = ws.acquire_as<std::int64_t>(100);
    ASSERT_NE(bytes, nullptr);
    ASSERT_NE(words, nullptr);
    for (std::size_t i = 0; i < 1000; ++i) bytes[i] = 0xAB;
    for (std::size_t i = 0; i < 100; ++i) words[i] = -7;
  }
  {
    const ScratchScope scope(ws);
    // Same acquire order, same slabs — even at different types.
    EXPECT_EQ(ws.acquire_as<float>(250),
              reinterpret_cast<float*>(bytes));
    EXPECT_EQ(ws.acquire_bytes(800), reinterpret_cast<std::uint8_t*>(words));
  }
  EXPECT_GE(ws.bytes_reserved(), 1000u + 100 * sizeof(std::int64_t));
}

}  // namespace
}  // namespace xfc::nn
