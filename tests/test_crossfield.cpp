// End-to-end tests of the cross-field compressor: bound guarantee,
// encoder/decoder agreement, anchor protocol, multi-field orchestration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/rng.hpp"
#include "crossfield/crossfield.hpp"
#include "crossfield/multifield.hpp"
#include "metrics/metrics.hpp"
#include "quant/dual_quant.hpp"
#include "sz/compressor.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

/// Small correlated multi-field set: target is a nonlinear function of the
/// anchors plus its own structure.
struct TinySet {
  Field target;
  Field a0, a1;
};

TinySet make_tiny(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  TinySet s{Field("TGT", F32Array(shape)), Field("A0", F32Array(shape)),
            Field("A1", F32Array(shape))};
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < s.target.size(); ++i) {
    const double x = static_cast<double>(i % w) / 6.0;
    const double y = static_cast<double>(i / w) / 9.0;
    const double base = std::sin(x) * std::cos(y) * 15.0;
    const double second = std::cos(x * 0.7) * 8.0;
    s.a0.array()[i] = static_cast<float>(base + rng.normal(0, 0.05));
    s.a1.array()[i] = static_cast<float>(second + rng.normal(0, 0.05));
    s.target.array()[i] = static_cast<float>(
        0.8 * base + 0.3 * second * second / 8.0 + rng.normal(0, 0.05));
  }
  return s;
}

CfnnTrainOptions quick_train() {
  CfnnTrainOptions t;
  t.epochs = 6;
  t.patches_per_epoch = 24;
  t.patch = 16;
  t.batch = 8;
  return t;
}

CfnnConfig tiny_cfnn() { return CfnnConfig{8, 4, 3}; }

class CrossFieldBound : public ::testing::TestWithParam<double> {};

TEST_P(CrossFieldBound, RoundtripWithinBound2D) {
  const double rel_eb = GetParam();
  const TinySet s = make_tiny(Shape{48, 64}, 42);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};

  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());

  CrossFieldOptions opt;
  opt.eb = ErrorBound::relative(rel_eb);
  SzStats stats;
  const auto stream =
      cross_field_compress(s.target, anchors, model, opt, &stats);
  const Field out = cross_field_decompress(stream, anchors);

  const double abs_eb = opt.eb.absolute_for(s.target.value_range());
  EXPECT_LE(
      max_abs_error(s.target.array().span(), out.array().span()),
      test::bound_tolerance(abs_eb, s.target));
  EXPECT_EQ(out.name(), "TGT");
  EXPECT_GT(stats.compression_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Bounds, CrossFieldBound,
                         ::testing::Values(5e-3, 1e-3, 5e-4, 1e-4));

TEST(CrossField, RoundtripWithinBound3D) {
  const TinySet s = make_tiny(Shape{6, 24, 24}, 43);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());

  CrossFieldOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  const auto stream = cross_field_compress(s.target, anchors, model, opt);
  const Field out = cross_field_decompress(stream, anchors);
  const double abs_eb = opt.eb.absolute_for(s.target.value_range());
  EXPECT_LE(max_abs_error(s.target.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, s.target));
}

TEST(CrossField, DecompressionMatchesPrequantReconstructionExactly) {
  // Dual quantization: decoded values must be exactly 2*eb*prequant codes.
  const TinySet s = make_tiny(Shape{32, 32}, 44);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());

  CrossFieldOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  const auto stream = cross_field_compress(s.target, anchors, model, opt);
  const Field out = cross_field_decompress(stream, anchors);

  const double abs_eb = opt.eb.absolute_for(s.target.value_range());
  const I32Array codes = prequantize(s.target.array(), abs_eb);
  const F32Array expect = dequantize(codes, abs_eb, s.target.shape());
  EXPECT_EQ(out.array().vec(), expect.vec());
}

TEST(CrossField, UntrainedModelStillBoundCorrect) {
  // Even a random CFNN cannot break the error bound — only the ratio.
  const TinySet s = make_tiny(Shape{32, 40}, 45);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model(anchors.size() * 2, 2, tiny_cfnn(), 7);

  CrossFieldOptions opt;
  opt.eb = ErrorBound::relative(1e-3);
  const auto stream = cross_field_compress(s.target, anchors, model, opt);
  const Field out = cross_field_decompress(stream, anchors);
  const double abs_eb = opt.eb.absolute_for(s.target.value_range());
  EXPECT_LE(max_abs_error(s.target.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, s.target));
}

TEST(CrossField, AnchorCountMismatchRejected) {
  const TinySet s = make_tiny(Shape{32, 32}, 46);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());
  const auto stream =
      cross_field_compress(s.target, anchors, model, CrossFieldOptions{});

  const std::vector<const Field*> wrong{&s.a0};
  EXPECT_THROW(cross_field_decompress(stream, wrong), InvalidArgument);
}

TEST(CrossField, AnchorNameMismatchRejected) {
  const TinySet s = make_tiny(Shape{32, 32}, 47);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());
  const auto stream =
      cross_field_compress(s.target, anchors, model, CrossFieldOptions{});

  const std::vector<const Field*> swapped{&s.a1, &s.a0};
  EXPECT_THROW(cross_field_decompress(stream, swapped), InvalidArgument);
}

TEST(CrossField, CorruptStreamRejected) {
  const TinySet s = make_tiny(Shape{32, 32}, 48);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model(4, 2, tiny_cfnn(), 3);
  auto stream =
      cross_field_compress(s.target, anchors, model, CrossFieldOptions{});
  stream[stream.size() / 3] ^= 0x08;
  EXPECT_THROW(cross_field_decompress(stream, anchors), CorruptStream);
}

TEST(CrossField, ModelGeometryMismatchRejected) {
  const TinySet s = make_tiny(Shape{32, 32}, 49);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model(6, 2, tiny_cfnn(), 3);  // expects 3 anchors
  EXPECT_THROW(
      cross_field_compress(s.target, anchors, model, CrossFieldOptions{}),
      InvalidArgument);
}

TEST(CrossField, OneDTargetRejected) {
  Field t("T", F32Array(Shape{100}));
  Field a("A", F32Array(Shape{100}));
  EXPECT_THROW(
      train_cross_field_model(t, {&a}, tiny_cfnn(), quick_train()),
      InvalidArgument);
}

TEST(CrossField, AnalyzeExposesCandidatesAndWeights) {
  const TinySet s = make_tiny(Shape{40, 40}, 50);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model =
      train_cross_field_model(s.target, anchors, tiny_cfnn(), quick_train());

  const auto analysis =
      cross_field_analyze(s.target, anchors, model, CrossFieldOptions{});
  EXPECT_EQ(analysis.candidates.size(), 3u);  // dx, dy, lorenzo
  EXPECT_EQ(analysis.diff_codes.size(), 2u);
  EXPECT_EQ(analysis.hybrid.num_predictors(), 3u);
  EXPECT_GT(analysis.abs_eb, 0.0);
  // Weights should roughly sum to 1 on well-correlated predictors.
  double wsum = 0;
  for (double w : analysis.hybrid.weights()) wsum += w;
  EXPECT_NEAR(wsum, 1.0, 0.35);
}

TEST(MultiField, CompressAllRoundtrips) {
  const TinySet s = make_tiny(Shape{40, 48}, 51);

  MultiFieldCompressor mfc;
  mfc.add_field(s.a0);
  mfc.add_field(s.a1);
  mfc.add_field(s.target);
  AnchorConfig cfg;
  cfg.anchors = {"A0", "A1"};
  cfg.cfnn = tiny_cfnn();
  cfg.train = quick_train();
  mfc.configure_target("TGT", cfg);

  const auto eb = ErrorBound::relative(1e-3);
  const auto compressed = mfc.compress_all(eb);
  ASSERT_EQ(compressed.size(), 3u);

  const auto fields = MultiFieldCompressor::decompress_all(compressed);
  ASSERT_EQ(fields.size(), 3u);

  for (std::size_t i = 0; i < fields.size(); ++i) {
    const Field* orig = mfc.find(compressed[i].name);
    ASSERT_NE(orig, nullptr);
    const double abs_eb = eb.absolute_for(orig->value_range());
    EXPECT_LE(
        max_abs_error(orig->array().span(), fields[i].array().span()),
        test::bound_tolerance(abs_eb, *orig))
        << compressed[i].name;
  }
}

TEST(MultiField, ModelCacheReusedAcrossBounds) {
  const TinySet s = make_tiny(Shape{32, 32}, 52);
  MultiFieldCompressor mfc;
  mfc.add_field(s.a0);
  mfc.add_field(s.a1);
  mfc.add_field(s.target);
  AnchorConfig cfg;
  cfg.anchors = {"A0", "A1"};
  cfg.cfnn = tiny_cfnn();
  cfg.train = quick_train();
  mfc.configure_target("TGT", cfg);

  // Two bounds; the second call reuses the cached model (fast) and both
  // roundtrip correctly.
  for (double rel : {1e-3, 1e-4}) {
    const auto compressed = mfc.compress_all(ErrorBound::relative(rel));
    const auto fields = MultiFieldCompressor::decompress_all(compressed);
    ASSERT_EQ(fields.size(), 3u);
  }
}

TEST(MultiField, ChainedTargetsRoundtrip) {
  // Mirrors paper Table III: FLUT anchors on LWCF, itself a cross-field
  // target (LWCF anchored on A0).
  const TinySet s = make_tiny(Shape{40, 48}, 53);
  Field chained = s.target;
  chained.set_name("CHAIN");
  for (std::size_t i = 0; i < chained.size(); ++i)
    chained.array()[i] = 0.5f * s.target.array()[i] + 0.2f * s.a0.array()[i];

  MultiFieldCompressor mfc;
  mfc.add_field(s.a0);
  mfc.add_field(s.a1);
  mfc.add_field(s.target);
  mfc.add_field(chained);

  AnchorConfig cfg1;
  cfg1.anchors = {"A0", "A1"};
  cfg1.cfnn = tiny_cfnn();
  cfg1.train = quick_train();
  mfc.configure_target("TGT", cfg1);

  AnchorConfig cfg2;
  cfg2.anchors = {"TGT", "A0"};  // anchors on another cross-field target
  cfg2.cfnn = tiny_cfnn();
  cfg2.train = quick_train();
  mfc.configure_target("CHAIN", cfg2);

  const auto eb = ErrorBound::relative(1e-3);
  const auto compressed = mfc.compress_all(eb);
  ASSERT_EQ(compressed.size(), 4u);
  const auto fields = MultiFieldCompressor::decompress_all(compressed);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    const Field* orig = mfc.find(compressed[i].name);
    const double abs_eb = eb.absolute_for(orig->value_range());
    EXPECT_LE(max_abs_error(orig->array().span(), fields[i].array().span()),
              test::bound_tolerance(abs_eb, *orig))
        << compressed[i].name;
  }
}

TEST(MultiField, MissingAnchorStreamDetected) {
  const TinySet s = make_tiny(Shape{32, 32}, 54);
  MultiFieldCompressor mfc;
  mfc.add_field(s.a0);
  mfc.add_field(s.a1);
  mfc.add_field(s.target);
  AnchorConfig cfg;
  cfg.anchors = {"A0", "A1"};
  cfg.cfnn = tiny_cfnn();
  cfg.train = quick_train();
  mfc.configure_target("TGT", cfg);

  auto compressed = mfc.compress_all(ErrorBound::relative(1e-3));
  // Drop one anchor's stream: the dependency resolver must throw, not hang.
  compressed.erase(
      std::find_if(compressed.begin(), compressed.end(),
                   [](const CompressedField& cf) { return cf.name == "A0"; }));
  EXPECT_THROW(MultiFieldCompressor::decompress_all(compressed),
               CorruptStream);
}

TEST(CrossField, HybridSelectionNotWorseThanLorenzoAlone) {
  // The estimated-bits selection must never pick a combination that is
  // materially worse than plain Lorenzo (Lorenzo is in the candidate set).
  const TinySet s = make_tiny(Shape{48, 64}, 55);
  const std::vector<const Field*> anchors{&s.a0, &s.a1};
  const CfnnModel model(4, 2, tiny_cfnn(), 99);  // untrained: cross is junk

  const auto analysis =
      cross_field_analyze(s.target, anchors, model, CrossFieldOptions{});
  std::vector<std::span<const std::int32_t>> spans;
  for (const auto& c : analysis.candidates) spans.push_back(c.span());
  const auto lorenzo_only = HybridModel::single(3, 2);
  EXPECT_LE(analysis.hybrid.estimated_bits(spans, analysis.codes.span()),
            lorenzo_only.estimated_bits(spans, analysis.codes.span()) *
                1.0001);
}

TEST(CrossField, ReconstructedAnchorProtocolEndToEnd) {
  // The real deployment contract: the encoder sees sz_reconstruct(anchor)
  // and the decoder sees sz_decompress(sz_compress(anchor)) -- dual
  // quantization makes these bit-identical, so the round trip must work
  // across the "two machines".
  const TinySet s = make_tiny(Shape{40, 48}, 60);
  SzOptions base;
  base.eb = ErrorBound::relative(1e-3);

  // Encoder side.
  const Field enc_a0 = sz_reconstruct(s.a0, base);
  const Field enc_a1 = sz_reconstruct(s.a1, base);
  const std::vector<const Field*> enc_anchors{&enc_a0, &enc_a1};
  const CfnnModel model = train_cross_field_model(s.target, enc_anchors,
                                                  tiny_cfnn(), quick_train());
  CrossFieldOptions copt;
  copt.eb = ErrorBound::relative(1e-3);
  const auto target_stream =
      cross_field_compress(s.target, enc_anchors, model, copt);
  const auto a0_stream = sz_compress(s.a0, base);
  const auto a1_stream = sz_compress(s.a1, base);

  // Decoder side: only the three streams cross the wire.
  const Field dec_a0 = sz_decompress(a0_stream);
  const Field dec_a1 = sz_decompress(a1_stream);
  EXPECT_EQ(dec_a0.array().vec(), enc_a0.array().vec());  // the contract
  const std::vector<const Field*> dec_anchors{&dec_a0, &dec_a1};
  const Field out = cross_field_decompress(target_stream, dec_anchors);

  const double abs_eb = copt.eb.absolute_for(s.target.value_range());
  EXPECT_LE(max_abs_error(s.target.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, s.target));
}

TEST(MultiField, ConfigValidation) {
  MultiFieldCompressor mfc;
  mfc.add_field(Field("X", F32Array(Shape{8, 8})));
  EXPECT_THROW(mfc.add_field(Field("X", F32Array(Shape{8, 8}))),
               InvalidArgument);  // duplicate

  AnchorConfig cfg;
  cfg.anchors = {"MISSING"};
  EXPECT_THROW(mfc.configure_target("X", cfg), InvalidArgument);

  cfg.anchors = {"X"};
  EXPECT_THROW(mfc.configure_target("X", cfg), InvalidArgument);  // self
}

}  // namespace
}  // namespace xfc
