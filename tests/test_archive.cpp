// XFA1 tiled-archive tests: grid geometry, per-codec round trips at the
// monolithic error bound, region reads bit-identical to cropped full
// decodes, the tiled anchor contract for cross-field targets, and the
// file-backed path.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <thread>

#include "archive/archive_appender.hpp"
#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "archive/tile.hpp"
#include "core/rng.hpp"
#include "crossfield/multifield.hpp"
#include "io/file.hpp"
#include "metrics/metrics.hpp"
#include "sz/compressor.hpp"
#include "test_util.hpp"

namespace xfc {
namespace {

Field smooth_field(const std::string& name, const Shape& shape,
                   std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w) / 7.0;
    const double y = static_cast<double>(i / w) / 11.0;
    a[i] = static_cast<float>(std::sin(x) * std::cos(y) * 20.0 +
                              rng.normal(0, 0.1));
  }
  return Field(name, std::move(a));
}

CfnnTrainOptions quick_train() {
  CfnnTrainOptions t;
  t.epochs = 4;
  t.patches_per_epoch = 16;
  t.patch = 16;
  t.batch = 8;
  return t;
}

// -- Tile grid geometry ------------------------------------------------------

TEST(TileGrid, CountsAndRaggedBoxes) {
  const TileGrid g(Shape{70, 90}, Shape{32, 32});
  EXPECT_EQ(g.tiles_along(0), 3u);
  EXPECT_EQ(g.tiles_along(1), 3u);
  EXPECT_EQ(g.num_tiles(), 9u);

  const TileBox first = g.box(0);
  EXPECT_EQ(first.lo[0], 0u);
  EXPECT_EQ(first.extents, (Shape{32, 32}));

  // Bottom-right corner tile is ragged on both axes: 70-64=6, 90-64=26.
  const TileBox last = g.box(8);
  EXPECT_EQ(last.lo[0], 64u);
  EXPECT_EQ(last.lo[1], 64u);
  EXPECT_EQ(last.extents, (Shape{6, 26}));

  // Every point is covered exactly once.
  std::vector<int> hits(70 * 90, 0);
  for (std::size_t t = 0; t < g.num_tiles(); ++t) {
    const TileBox b = g.box(t);
    for (std::size_t i = 0; i < b.extents[0]; ++i)
      for (std::size_t j = 0; j < b.extents[1]; ++j)
        ++hits[(b.lo[0] + i) * 90 + b.lo[1] + j];
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(TileGrid, DefaultTileClipsToField) {
  EXPECT_EQ(TileGrid::default_tile(Shape{100}), (Shape{100}));
  EXPECT_EQ(TileGrid::default_tile(Shape{512, 512}), (Shape{256, 256}));
  EXPECT_EQ(TileGrid::default_tile(Shape{40, 700}), (Shape{40, 256}));
  EXPECT_EQ(TileGrid::default_tile(Shape{100, 100, 100}), (Shape{64, 64, 64}));
}

TEST(TileGrid, TilesInRegion) {
  const TileGrid g(Shape{64, 64}, Shape{16, 16});  // 4x4 grid
  // A region strictly inside tile (1,2).
  const std::size_t lo1[] = {18, 36}, hi1[] = {30, 44};
  EXPECT_EQ(g.tiles_in_region(lo1, hi1), (std::vector<std::size_t>{6}));
  // A region straddling a 2x2 block of tiles.
  const std::size_t lo2[] = {15, 15}, hi2[] = {17, 17};
  EXPECT_EQ(g.tiles_in_region(lo2, hi2),
            (std::vector<std::size_t>{0, 1, 4, 5}));
  // The whole field touches every tile.
  const std::size_t lo3[] = {0, 0}, hi3[] = {64, 64};
  EXPECT_EQ(g.tiles_in_region(lo3, hi3).size(), 16u);
}

TEST(TileGrid, ExtractInsertRoundTrip3D) {
  const Field f = smooth_field("f", Shape{9, 10, 11}, 1);
  const TileGrid g(f.shape(), Shape{4, 4, 4});
  F32Array rebuilt(f.shape());
  for (std::size_t t = 0; t < g.num_tiles(); ++t) {
    const TileBox b = g.box(t);
    insert_tile(rebuilt, b, extract_tile(f.array(), b));
  }
  EXPECT_EQ(rebuilt, f.array());
}

// -- Round trips per codec ---------------------------------------------------

class ArchiveCodecRoundtrip : public ::testing::TestWithParam<CodecId> {};

TEST_P(ArchiveCodecRoundtrip, TiledRoundTripHoldsMonolithicBound) {
  // 70x90 with 32x32 tiles: ragged tiles on both axes.
  const Field f = smooth_field("fld", Shape{70, 90}, 7);
  ArchiveFieldOptions opts;
  opts.codec = GetParam();
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{32, 32};

  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, opts);
  writer.finish();
  const auto bytes = sink.take();

  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  ASSERT_EQ(reader.fields().size(), 1u);
  EXPECT_EQ(reader.fields()[0].tiles.size(), 9u);

  const Field out = reader.read_field("fld");
  EXPECT_EQ(out.name(), "fld");
  ASSERT_EQ(out.shape(), f.shape());
  // The configured bound is resolved against the FULL field's range, so
  // the tiled round trip must satisfy exactly the monolithic guarantee.
  const double abs_eb = opts.eb.absolute_for(f.value_range());
  EXPECT_LE(max_abs_error(f.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, f));
}

INSTANTIATE_TEST_SUITE_P(Codecs, ArchiveCodecRoundtrip,
                         ::testing::Values(CodecId::kSz, CodecId::kSzClassic,
                                           CodecId::kInterp, CodecId::kZfp));

TEST(Archive, TiledSzReconstructionMatchesMonolithic) {
  // Dual quantization is pointwise, so the tiled decode must be
  // bit-identical to the monolithic reconstruction at the same absolute
  // bound — the property that makes tiling transparent to anchors.
  const Field f = smooth_field("fld", Shape{60, 44}, 9);
  const double abs_eb = 1e-3 * f.value_range();

  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::absolute(abs_eb);
  opts.tile = Shape{16, 16};
  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, opts);
  writer.finish();
  const auto bytes = sink.take();
  const Field tiled = ArchiveReader::open_memory(bytes).read_field("fld");

  SzOptions mono;
  mono.eb = ErrorBound::absolute(abs_eb);
  const Field ref = sz_reconstruct(f, mono);
  EXPECT_EQ(tiled.array(), ref.array());
}

TEST(Archive, RoundTrip1DAnd3D) {
  for (const Shape& shape : {Shape{5000}, Shape{20, 24, 28}}) {
    const Field f = smooth_field("f", shape, 11);
    ArchiveFieldOptions opts;
    opts.tile = shape.ndim() == 1 ? Shape{700} : Shape{8, 8, 8};
    VectorSink sink;
    ArchiveWriter writer(sink);
    writer.add_field(f, opts);
    writer.finish();
    const auto bytes = sink.take();
    const Field out = ArchiveReader::open_memory(bytes).read_field("f");
    const double abs_eb = opts.eb.absolute_for(f.value_range());
    EXPECT_LE(max_abs_error(f.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, f))
        << shape.ndim() << "D";
  }
}

// -- Region reads ------------------------------------------------------------

TEST(Archive, ReadRegionBitIdenticalToCroppedFullDecode) {
  const Field f = smooth_field("fld", Shape{70, 90}, 13);
  ArchiveFieldOptions opts;
  opts.tile = Shape{32, 32};
  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, opts);
  writer.finish();
  const auto bytes = sink.take();
  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  const Field full = reader.read_field("fld");

  Rng rng(17);
  for (int trial = 0; trial < 12; ++trial) {
    std::size_t lo[2], hi[2];
    for (int d = 0; d < 2; ++d) {
      const std::size_t n = f.shape()[d];
      lo[d] = rng.uniform_index(n - 1);
      hi[d] = lo[d] + 1 + rng.uniform_index(n - lo[d]);
    }
    const Field region = reader.read_region("fld", lo, hi);
    ASSERT_EQ(region.shape(), (Shape{hi[0] - lo[0], hi[1] - lo[1]}));
    for (std::size_t i = 0; i < region.shape()[0]; ++i)
      ASSERT_EQ(0, std::memcmp(&region.array()(i, 0),
                               &full.array()(lo[0] + i, lo[1]),
                               region.shape()[1] * sizeof(float)))
          << "trial " << trial << " row " << i;
  }
}

TEST(Archive, ReadRegion3D) {
  const Field f = smooth_field("fld", Shape{20, 24, 28}, 19);
  ArchiveFieldOptions opts;
  opts.tile = Shape{8, 8, 8};
  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, opts);
  writer.finish();
  const auto bytes = sink.take();
  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  const Field full = reader.read_field("fld");

  const std::size_t lo[] = {3, 6, 9}, hi[] = {14, 20, 25};
  const Field region = reader.read_region("fld", lo, hi);
  ASSERT_EQ(region.shape(), (Shape{11, 14, 16}));
  for (std::size_t i = 0; i < 11; ++i)
    for (std::size_t j = 0; j < 14; ++j)
      for (std::size_t k = 0; k < 16; ++k)
        ASSERT_EQ(region.array()(i, j, k),
                  full.array()(lo[0] + i, lo[1] + j, lo[2] + k));
}

TEST(Archive, ReadRegionRejectsBadBounds) {
  const Field f = smooth_field("fld", Shape{40, 40}, 23);
  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, ArchiveFieldOptions{});
  writer.finish();
  const auto bytes = sink.take();
  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  const std::size_t lo_bad[] = {10, 10}, hi_bad[] = {10, 20};  // empty
  EXPECT_THROW(reader.read_region("fld", lo_bad, hi_bad), InvalidArgument);
  const std::size_t lo_oob[] = {0, 0}, hi_oob[] = {41, 40};
  EXPECT_THROW(reader.read_region("fld", lo_oob, hi_oob), InvalidArgument);
  EXPECT_THROW(reader.read_field("nope"), InvalidArgument);
}

// -- Cross-field tiling ------------------------------------------------------

struct TinySet {
  Field target;
  Field a0, a1;
};

TinySet make_tiny(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  TinySet s{Field("TGT", F32Array(shape)), Field("A0", F32Array(shape)),
            Field("A1", F32Array(shape))};
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < s.target.size(); ++i) {
    const double x = static_cast<double>(i % w) / 6.0;
    const double y = static_cast<double>(i / w) / 9.0;
    const double base = std::sin(x) * std::cos(y) * 15.0;
    const double second = std::cos(x * 0.7) * 8.0;
    s.a0.array()[i] = static_cast<float>(base + rng.normal(0, 0.05));
    s.a1.array()[i] = static_cast<float>(second + rng.normal(0, 0.05));
    s.target.array()[i] = static_cast<float>(
        0.8 * base + 0.3 * second * second / 8.0 + rng.normal(0, 0.05));
  }
  return s;
}

TEST(Archive, CrossFieldTiledAnchorContract) {
  const TinySet s = make_tiny(Shape{40, 48}, 31);
  const auto eb = ErrorBound::relative(1e-3);

  const CfnnModel model = train_cross_field_model(
      s.target, {&s.a0, &s.a1}, CfnnConfig{8, 4, 3}, quick_train());

  ArchiveFieldOptions aopts;
  aopts.eb = eb;
  aopts.tile = Shape{16, 16};
  aopts.keep_reconstruction = true;

  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(s.a0, aopts);
  writer.add_field(s.a1, aopts);
  writer.add_cross_field(s.target, {"A0", "A1"}, model, aopts);
  writer.finish();

  // The writer retained decoder-identical reconstructions; grab the
  // target's before the sink is consumed.
  ASSERT_NE(writer.reconstruction("TGT"), nullptr);
  const Field encoder_side = *writer.reconstruction("TGT");
  const auto bytes = sink.take();

  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  ASSERT_EQ(reader.fields().size(), 3u);
  EXPECT_TRUE(reader.find("TGT")->cross_field);
  EXPECT_EQ(reader.find("TGT")->anchors,
            (std::vector<std::string>{"A0", "A1"}));

  // Anchor contract under tiling: encoder- and decoder-side target
  // reconstructions must be bit-identical.
  const Field decoded = reader.read_field("TGT");
  EXPECT_EQ(decoded.array(), encoder_side.array());

  const double abs_eb = eb.absolute_for(s.target.value_range());
  EXPECT_LE(max_abs_error(s.target.array().span(), decoded.array().span()),
            test::bound_tolerance(abs_eb, s.target));

  // Region read of a cross-field target (pulls anchor tiles recursively)
  // matches the cropped full decode bit-for-bit.
  const std::size_t lo[] = {10, 12}, hi[] = {30, 40};
  const Field region = reader.read_region("TGT", lo, hi);
  for (std::size_t i = 0; i < 20; ++i)
    for (std::size_t j = 0; j < 28; ++j)
      ASSERT_EQ(region.array()(i, j),
                decoded.array()(lo[0] + i, lo[1] + j));
}

TEST(Archive, MultiFieldWriteArchiveRoundTrips) {
  const TinySet s = make_tiny(Shape{40, 48}, 37);
  MultiFieldCompressor mfc;
  mfc.add_field(s.a0);
  mfc.add_field(s.a1);
  mfc.add_field(s.target);
  AnchorConfig cfg;
  cfg.anchors = {"A0", "A1"};
  cfg.cfnn = CfnnConfig{8, 4, 3};
  cfg.train = quick_train();
  mfc.configure_target("TGT", cfg);

  const auto eb = ErrorBound::relative(1e-3);
  ArchiveFieldOptions base;
  base.tile = Shape{16, 16};

  VectorSink sink;
  ArchiveWriter writer(sink);
  mfc.write_archive(writer, eb, base);
  writer.finish();
  const auto bytes = sink.take();

  ArchiveReader reader = ArchiveReader::open_memory(bytes);
  const auto fields = reader.read_all();
  ASSERT_EQ(fields.size(), 3u);
  for (const Field& out : fields) {
    const Field* orig = mfc.find(out.name());
    ASSERT_NE(orig, nullptr);
    const double abs_eb = eb.absolute_for(orig->value_range());
    EXPECT_LE(max_abs_error(orig->array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, *orig))
        << out.name();
  }
}

// -- Writer API misuse -------------------------------------------------------

TEST(Archive, WriterRejectsMisuse) {
  const Field f = smooth_field("fld", Shape{20, 20}, 41);
  VectorSink sink;
  ArchiveWriter writer(sink);
  writer.add_field(f, ArchiveFieldOptions{});
  EXPECT_THROW(writer.add_field(f, ArchiveFieldOptions{}), InvalidArgument)
      << "duplicate name";

  ArchiveFieldOptions xopts;
  xopts.codec = CodecId::kCrossField;
  Field g = smooth_field("g", Shape{20, 20}, 42);
  EXPECT_THROW(writer.add_field(g, xopts), InvalidArgument);

  const CfnnModel model = train_cross_field_model(
      g, {&f}, CfnnConfig{8, 4, 3}, quick_train());
  // Anchor "fld" was not added with keep_reconstruction.
  EXPECT_THROW(writer.add_cross_field(g, {"fld"}, model, ArchiveFieldOptions{}),
               InvalidArgument);

  writer.finish();
  EXPECT_THROW(writer.finish(), InvalidArgument);
  EXPECT_THROW(writer.add_field(g, ArchiveFieldOptions{}), InvalidArgument);
}

// -- File-backed path --------------------------------------------------------

TEST(Archive, FileBackedWriteAndSeekingRead) {
  const std::string path = ::testing::TempDir() + "xfc_test_archive.xfa";
  const Field f = smooth_field("fld", Shape{64, 64}, 43);
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    ArchiveFieldOptions opts;
    opts.tile = Shape{32, 32};
    writer.add_field(f, opts);
    writer.finish();
  }
  ArchiveReader reader = ArchiveReader::open_file(path);
  const Field full = reader.read_field("fld");
  const double abs_eb =
      ArchiveFieldOptions{}.eb.absolute_for(f.value_range());
  EXPECT_LE(max_abs_error(f.array().span(), full.array().span()),
            test::bound_tolerance(abs_eb, f));

  const std::size_t lo[] = {40, 8}, hi[] = {64, 33};
  const Field region = reader.read_region("fld", lo, hi);
  for (std::size_t i = 0; i < region.shape()[0]; ++i)
    for (std::size_t j = 0; j < region.shape()[1]; ++j)
      ASSERT_EQ(region.array()(i, j), full.array()(lo[0] + i, lo[1] + j));
  std::remove(path.c_str());
}

TEST(Archive, ConcurrentReadsFromOneFileBackedReader) {
  // Regression for the shared-fd seek+read race: RandomAccessFile used one
  // seek cursor behind a mutex; tile reads now use positional pread, so
  // many threads hammering one reader must all see the single-threaded
  // bytes. (Pre-fix the mutex hid the race; this pins the contract so a
  // future "optimization" back to a shared cursor fails loudly.)
  const std::string path = ::testing::TempDir() + "xfc_test_archive_mt.xfa";
  const Field f = smooth_field("fld", Shape{128, 128}, 77);
  {
    FileSink sink(path);
    ArchiveWriter writer(sink);
    ArchiveFieldOptions opts;
    opts.tile = Shape{16, 16};  // 64 tiles: plenty of concurrent read_at
    writer.add_field(f, opts);
    writer.finish();
  }
  const ArchiveReader reader = ArchiveReader::open_file(path);
  const Field expected = reader.read_field("fld");
  const ArchiveFieldInfo& info = *reader.find("fld");

  constexpr int kThreads = 8;
  std::atomic<int> at_gate{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      at_gate.fetch_add(1);
      while (at_gate.load() < kThreads) std::this_thread::yield();
      // Mix whole-field (tile-parallel), region, and single-tile reads.
      const Field full = reader.read_field("fld");
      if (full.array() != expected.array()) failures.fetch_add(1);
      const std::size_t lo[] = {static_cast<std::size_t>(8 * i), 24};
      const std::size_t hi[] = {lo[0] + 40, 120};
      const Field region = reader.read_region("fld", lo, hi);
      for (std::size_t r = 0; r < 40 && failures.load() == 0; ++r)
        for (std::size_t c = 0; c < 96; ++c)
          if (region.array()(r, c) !=
              expected.array()(lo[0] + r, 24 + c)) {
            failures.fetch_add(1);
            break;
          }
      const Field tile = reader.read_tile(info, static_cast<std::size_t>(i),
                                          {});
      const TileGrid grid(info.shape, info.tile);
      if (tile.array() !=
          extract_tile(expected.array(), grid.box(i)))
        failures.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  std::remove(path.c_str());
}

// -- Index self-protection ---------------------------------------------------

TEST(Archive, TileCrcIsPositionAndFieldDependent) {
  const std::vector<std::uint8_t> body{1, 2, 3, 4, 5};
  const auto base = archive_tile_crc("A", 0, body);
  EXPECT_NE(base, archive_tile_crc("A", 1, body));
  EXPECT_NE(base, archive_tile_crc("B", 0, body));
  EXPECT_EQ(base, archive_tile_crc("A", 0, body));
}

// -- Epoch appends -----------------------------------------------------------

TEST(Archive, AppendEpochRoundTripsAndAnchorsOnSealedFields) {
  const Shape shape{40, 48};
  const Field a = smooth_field("a", shape, 5);
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{16, 16};
  VectorSink base_sink;
  {
    ArchiveWriter writer(base_sink);
    writer.add_field(a, opts);
    writer.finish();
  }
  const std::vector<std::uint8_t> base = base_sink.take();

  const ArchiveReader r0 = ArchiveReader::open_memory(base);
  EXPECT_EQ(r0.epoch_count(), 1u);
  const Field a_recon = r0.read_field("a");

  // Epoch 1: a plain append plus a cross-field target anchored on the
  // sealed epoch-0 field — its reconstruction is decoded on demand through
  // the existing reader, no keep_reconstruction needed at epoch 0.
  Rng rng(31);
  Field vx("vx", F32Array(shape));
  for (std::size_t i = 0; i < vx.size(); ++i)
    vx.array()[i] = static_cast<float>(0.8 * a_recon.array()[i] +
                                       rng.normal(0, 0.05));
  const CfnnModel model = train_cross_field_model(vx, {&a_recon},
                                                  CfnnConfig{8, 4, 3},
                                                  quick_train());
  const Field b = smooth_field("b", shape, 6);
  VectorSink sink(base);
  ArchiveAppender appender(sink, r0);
  appender.append_field(b, opts);
  appender.append_cross_field(vx, {"a"}, model, opts);
  EXPECT_EQ(appender.fields_pending(), 2u);
  EXPECT_EQ(appender.finish_epoch(), 1u);
  EXPECT_EQ(appender.fields_pending(), 0u);
  const std::vector<std::uint8_t> bytes = sink.take();

  const ArchiveReader r1 = ArchiveReader::open_memory(bytes);
  EXPECT_EQ(r1.epoch_count(), 2u);
  EXPECT_EQ(r1.recovered_bytes_discarded(), 0u);
  EXPECT_TRUE(r1.scrub().clean());
  ASSERT_EQ(r1.fields().size(), 3u);
  EXPECT_EQ(r1.fields()[0].name, "a");
  EXPECT_EQ(r1.fields()[0].epoch, 0u);
  EXPECT_EQ(r1.fields()[1].epoch, 1u);
  EXPECT_EQ(r1.fields()[2].epoch, 1u);

  // Epoch-0 bytes are untouched: the old field decodes bit-identically.
  EXPECT_EQ(r1.read_field("a").array(), a_recon.array());
  // The appended fields meet their error bound through the merged index.
  for (const Field* orig : std::initializer_list<const Field*>{&b, &vx}) {
    const Field out = r1.read_field(orig->name());
    const double abs_eb = opts.eb.absolute_for(orig->value_range());
    EXPECT_LE(max_abs_error(orig->array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, *orig))
        << orig->name();
  }
}

TEST(Archive, ReplaceFieldKeepsIndexPositionAndSupersedesData) {
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{16, 16};
  VectorSink base_sink;
  {
    ArchiveWriter writer(base_sink);
    writer.add_field(smooth_field("a", Shape{40, 48}, 5), opts);
    writer.add_field(smooth_field("b", Shape{40, 48}, 6), opts);
    writer.finish();
  }
  const std::vector<std::uint8_t> base = base_sink.take();
  const ArchiveReader r0 = ArchiveReader::open_memory(base);
  const Field b_before = r0.read_field("b");

  // Replace "a" with a different shape and different data.
  const Field a2 = smooth_field("a", Shape{24, 20}, 77);
  VectorSink sink(base);
  ArchiveAppender appender(sink, r0);
  appender.replace_field(a2, opts);
  EXPECT_EQ(appender.finish_epoch(), 1u);
  const std::vector<std::uint8_t> bytes = sink.take();

  const ArchiveReader r1 = ArchiveReader::open_memory(bytes);
  ASSERT_EQ(r1.fields().size(), 2u);
  // The replacement sits at the replaced field's index position, so cached
  // keys of every *other* field stay valid across the swap.
  EXPECT_EQ(r1.fields()[0].name, "a");
  EXPECT_EQ(r1.fields()[0].epoch, 1u);
  EXPECT_EQ(r1.fields()[0].shape, (Shape{24, 20}));
  EXPECT_EQ(r1.fields()[1].name, "b");
  EXPECT_EQ(r1.fields()[1].epoch, 0u);
  EXPECT_EQ(r1.read_field("b").array(), b_before.array());
  const Field out = r1.read_field("a");
  const double abs_eb = opts.eb.absolute_for(a2.value_range());
  EXPECT_LE(max_abs_error(a2.array().span(), out.array().span()),
            test::bound_tolerance(abs_eb, a2));
  EXPECT_TRUE(r1.scrub().clean());
}

TEST(Archive, AppenderRejectsMisuse) {
  ArchiveFieldOptions opts;
  opts.eb = ErrorBound::relative(1e-3);
  opts.tile = Shape{16, 16};
  const Field a = smooth_field("a", Shape{40, 48}, 5);
  VectorSink base_sink;
  {
    ArchiveWriter writer(base_sink);
    ArchiveFieldOptions kopts = opts;
    kopts.keep_reconstruction = true;
    ArchiveWriter& w = writer;
    w.add_field(a, kopts);
    Rng rng(31);
    Field tgt("tgt", F32Array(Shape{40, 48}));
    for (std::size_t i = 0; i < tgt.size(); ++i)
      tgt.array()[i] =
          static_cast<float>(0.8 * a.array()[i] + rng.normal(0, 0.05));
    const CfnnModel model = train_cross_field_model(
        tgt, {&a}, CfnnConfig{8, 4, 3}, quick_train());
    w.add_cross_field(tgt, {"a"}, model, opts);
    w.finish();
  }
  const std::vector<std::uint8_t> base = base_sink.take();
  const ArchiveReader r0 = ArchiveReader::open_memory(base);

  VectorSink sink(base);
  ArchiveAppender appender(sink, r0);
  // Appending under a taken name, replacing a missing one, sealing an
  // empty epoch: all typed errors before any byte lands.
  EXPECT_THROW(appender.append_field(a, opts), InvalidArgument);
  EXPECT_THROW(appender.replace_field(smooth_field("nope", Shape{8, 8}, 1),
                                      opts),
               InvalidArgument);
  EXPECT_THROW(appender.finish_epoch(), InvalidArgument);
  // Replacing an anchor would break the dependents' bit-exact anchor
  // reconstructions.
  EXPECT_THROW(appender.replace_field(smooth_field("a", Shape{8, 8}, 2), opts),
               InvalidArgument);
  // A field appended this epoch without keep_reconstruction cannot anchor:
  // its reconstruction is not reachable until the file is reopened.
  const Field c = smooth_field("c", Shape{40, 48}, 9);
  appender.append_field(c, opts);  // keep_reconstruction defaults false
  Rng rng(32);
  Field dep("dep", F32Array(Shape{40, 48}));
  for (std::size_t i = 0; i < dep.size(); ++i)
    dep.array()[i] =
        static_cast<float>(0.7 * c.array()[i] + rng.normal(0, 0.05));
  const CfnnModel model = train_cross_field_model(
      dep, {&c}, CfnnConfig{8, 4, 3}, quick_train());
  EXPECT_THROW(appender.append_cross_field(dep, {"c"}, model, opts),
               InvalidArgument);
  EXPECT_EQ(appender.fields_pending(), 1u);  // "c" alone survived
  appender.finish_epoch();
  EXPECT_TRUE(
      ArchiveReader::open_memory(sink.bytes()).scrub().clean());

  // The sink must sit exactly at the sealed size the reader describes.
  VectorSink misaligned(std::vector<std::uint8_t>(base.size() + 3, 0));
  EXPECT_THROW(ArchiveAppender(misaligned, r0), InvalidArgument);
}

}  // namespace
}  // namespace xfc
