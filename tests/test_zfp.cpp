// Tests for the ZFP-style fixed-accuracy transform codec.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/rng.hpp"
#include "metrics/metrics.hpp"
#include "zfp/zfp_codec.hpp"

namespace xfc {
namespace {

Field turbulent(const Shape& shape, std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(shape);
  const std::size_t w = shape[shape.ndim() - 1];
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = static_cast<double>(i % w);
    const double y = static_cast<double>(i / w);
    a[i] = static_cast<float>(30.0 * std::sin(x / 7.0 + y / 13.0) +
                              5.0 * std::sin(x / 2.1) + rng.normal(0.0, 0.3));
  }
  return Field("turb", std::move(a));
}

using ZfpCase = std::tuple<int /*rank*/, double /*tolerance*/>;

class ZfpToleranceSweep : public ::testing::TestWithParam<ZfpCase> {};

TEST_P(ZfpToleranceSweep, ErrorWithinTolerance) {
  const auto& [rank, tol] = GetParam();
  const Shape shape = rank == 1   ? Shape{4093}
                      : rank == 2 ? Shape{67, 59}
                                  : Shape{10, 22, 26};
  const Field field = turbulent(shape, 11 + rank);

  ZfpOptions opt;
  opt.tolerance = tol;
  SzStats stats;
  const auto stream = zfp_compress(field, opt, &stats);
  const Field out = zfp_decompress(stream);

  EXPECT_EQ(out.shape(), field.shape());
  // The guard-bit budget makes the bound conservative in zfp-style codecs;
  // assert the advertised tolerance outright.
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()), tol)
      << "rank " << rank << " tol " << tol;
}

INSTANTIATE_TEST_SUITE_P(RanksAndTolerances, ZfpToleranceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1e-1, 1e-2,
                                                              1e-3, 1e-4)));

TEST(Zfp, ZeroBlocksCost2Bits) {
  Field zero("zero", F32Array(Shape{64, 64}));
  SzStats stats;
  zfp_compress(zero, ZfpOptions{}, &stats);
  // 16x16 blocks, ~1 bit each + container overhead.
  EXPECT_LT(stats.compressed_bytes, 200u);
}

TEST(Zfp, TighterToleranceCostsMoreBits) {
  const Field field = turbulent(Shape{64, 64}, 3);
  SzStats loose, tight;
  zfp_compress(field, {.tolerance = 1.0}, &loose);
  zfp_compress(field, {.tolerance = 1e-4}, &tight);
  EXPECT_LT(loose.compressed_bytes, tight.compressed_bytes);
}

TEST(Zfp, PartialEdgeBlocksReconstruct) {
  // 5x7x9: every block on the far edges is partial.
  const Field field = turbulent(Shape{5, 7, 9}, 4);
  ZfpOptions opt;
  opt.tolerance = 1e-3;
  const Field out = zfp_decompress(zfp_compress(field, opt));
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()), 1e-3);
}

TEST(Zfp, LargeMagnitudeData) {
  F32Array a(Shape{32, 32});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(1e20 * std::sin(i / 5.0));
  const Field field("big", std::move(a));
  ZfpOptions opt;
  opt.tolerance = 1e14;  // relative-ish tolerance for huge values
  const Field out = zfp_decompress(zfp_compress(field, opt));
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()), 1e14);
}

TEST(Zfp, NegativeAndMixedSignValues) {
  F32Array a(Shape{16, 16});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = (i % 2 == 0 ? -1.0f : 1.0f) * static_cast<float>(i);
  const Field field("mixed", std::move(a));
  ZfpOptions opt;
  opt.tolerance = 0.01;
  const Field out = zfp_decompress(zfp_compress(field, opt));
  EXPECT_LE(max_abs_error(field.array().span(), out.array().span()), 0.01);
}

TEST(Zfp, CorruptStreamThrows) {
  const Field field = turbulent(Shape{40, 40}, 5);
  auto stream = zfp_compress(field, ZfpOptions{});
  stream[stream.size() - 2] ^= 0x40;  // damage CRC area
  EXPECT_THROW(zfp_decompress(stream), CorruptStream);
}

TEST(Zfp, RejectsNonPositiveTolerance) {
  const Field field = turbulent(Shape{8, 8}, 6);
  EXPECT_THROW(zfp_compress(field, {.tolerance = 0.0}), InvalidArgument);
}

TEST(Zfp, SmoothDataBeatsWhiteNoise) {
  Rng rng(9);
  F32Array noise_a(Shape{64, 64});
  for (auto& v : noise_a.vec()) v = static_cast<float>(rng.normal(0, 10));
  const Field noise("noise", std::move(noise_a));
  const Field smooth = turbulent(Shape{64, 64}, 10);

  SzStats sn, ss;
  zfp_compress(noise, {.tolerance = 1e-2}, &sn);
  zfp_compress(smooth, {.tolerance = 1e-2}, &ss);
  EXPECT_GT(ss.compression_ratio, sn.compression_ratio);
}

}  // namespace
}  // namespace xfc
