// Tests for the hybrid prediction model (linear combiner).

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/rng.hpp"
#include "hybrid/hybrid.hpp"

namespace xfc {
namespace {

TEST(Hybrid, RecoversKnownLinearCombination) {
  Rng rng(1);
  const std::size_t n = 5000;
  std::vector<std::int32_t> c0(n), c1(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<std::int32_t>(rng.uniform_index(2000)) - 1000;
    c1[i] = static_cast<std::int32_t>(rng.uniform_index(2000)) - 1000;
    y[i] = static_cast<std::int32_t>(
        std::lround(0.7 * c0[i] + 0.3 * c1[i] + 5.0));
  }
  const auto model = HybridModel::fit({c0, c1}, y, /*lambda=*/0.0);
  EXPECT_NEAR(model.weights()[0], 0.7, 0.01);
  EXPECT_NEAR(model.weights()[1], 0.3, 0.01);
  EXPECT_NEAR(model.bias(), 5.0, 0.5);
}

TEST(Hybrid, CombineRoundsToNearest) {
  HybridModel m(2);  // weights {0.5, 0.5}, bias 0
  const std::array<std::int64_t, 2> p{3, 4};
  EXPECT_EQ(m.combine(p), 4);  // 3.5 -> banker's/nearest even is fine: 4 or 3
  const std::array<std::int64_t, 2> q{4, 4};
  EXPECT_EQ(m.combine(q), 4);
}

TEST(Hybrid, CombineChecksArity) {
  HybridModel m(3);
  const std::array<std::int64_t, 2> p{1, 2};
  EXPECT_THROW(m.combine(p), InvalidArgument);
}

TEST(Hybrid, RidgeShrinksWeights) {
  Rng rng(2);
  const std::size_t n = 2000;
  std::vector<std::int32_t> c0(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<std::int32_t>(rng.uniform_index(100)) - 50;
    y[i] = c0[i];
  }
  const auto loose = HybridModel::fit({c0}, y, 0.0);
  const auto tight = HybridModel::fit({c0}, y, 100.0);
  EXPECT_GT(loose.weights()[0], tight.weights()[0]);
}

TEST(Hybrid, FitSubsamplesLargeInputs) {
  Rng rng(3);
  const std::size_t n = 1 << 18;
  std::vector<std::int32_t> c0(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<std::int32_t>(rng.uniform_index(1000));
    y[i] = c0[i] * 2;
  }
  const auto model = HybridModel::fit({c0}, y, 0.0, /*max_samples=*/1024);
  EXPECT_NEAR(model.weights()[0], 2.0, 0.05);
}

TEST(Hybrid, SgdLossDecreasesMonotonically) {
  Rng rng(4);
  const std::size_t n = 3000;
  std::vector<std::int32_t> c0(n), c1(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<std::int32_t>(rng.uniform_index(200)) - 100;
    c1[i] = static_cast<std::int32_t>(rng.uniform_index(200)) - 100;
    y[i] = static_cast<std::int32_t>(std::lround(0.9 * c0[i] - 0.2 * c1[i]));
  }
  std::vector<double> losses;
  const auto model = HybridModel::fit_sgd({c0, c1}, y, 50, 0.5, &losses);
  ASSERT_EQ(losses.size(), 50u);
  EXPECT_LT(losses.back(), losses.front());
  // Most steps should not increase the loss (full-batch GD).
  int increases = 0;
  for (std::size_t i = 1; i < losses.size(); ++i)
    if (losses[i] > losses[i - 1] * 1.001) ++increases;
  EXPECT_LE(increases, 5);
}

TEST(Hybrid, SerializeRoundtrip) {
  Rng rng(5);
  std::vector<std::int32_t> c0(100), c1(100), c2(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    c0[i] = static_cast<std::int32_t>(i);
    c1[i] = static_cast<std::int32_t>(2 * i);
    c2[i] = static_cast<std::int32_t>(rng.uniform_index(50));
    y[i] = c0[i] + c1[i];
  }
  const auto model = HybridModel::fit({c0, c1, c2}, y);

  ByteWriter w;
  model.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto restored = HybridModel::deserialize(r);

  EXPECT_EQ(restored.weights(), model.weights());
  EXPECT_EQ(restored.bias(), model.bias());
  const std::array<std::int64_t, 3> p{10, 20, 30};
  EXPECT_EQ(restored.combine(p), model.combine(p));
}

TEST(Hybrid, ParamCountMatchesPaperTable3) {
  // 2D: 3 predictors + bias = 4; 3D: 4 predictors + bias = 5.
  EXPECT_EQ(HybridModel(3).param_count(), 4u);
  EXPECT_EQ(HybridModel(4).param_count(), 5u);
}

TEST(Hybrid, UniformFallbackAverages) {
  HybridModel m(4);
  const std::array<std::int64_t, 4> p{4, 8, 12, 16};
  EXPECT_EQ(m.combine(p), 10);
}

TEST(Hybrid, DegenerateConstantCandidate) {
  // A constant candidate column must not destabilise the solve.
  std::vector<std::int32_t> c0(500, 7), y(500);
  for (std::size_t i = 0; i < 500; ++i)
    y[i] = static_cast<std::int32_t>(i % 13);
  const auto model = HybridModel::fit({c0}, y);
  // Prediction should approximate the mean of y.
  const std::array<std::int64_t, 1> p{7};
  EXPECT_NEAR(static_cast<double>(model.combine(p)), 6.0, 1.5);
}

TEST(Hybrid, L1FitRecoversLinearCombination) {
  Rng rng(6);
  const std::size_t n = 4000;
  std::vector<std::int32_t> c0(n), c1(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<std::int32_t>(rng.uniform_index(1000)) - 500;
    c1[i] = static_cast<std::int32_t>(rng.uniform_index(1000)) - 500;
    y[i] = static_cast<std::int32_t>(std::lround(0.4 * c0[i] + 0.6 * c1[i]));
  }
  const auto model = HybridModel::fit_l1({c0, c1}, y, 1e-6);
  EXPECT_NEAR(model.weights()[0], 0.4, 0.03);
  EXPECT_NEAR(model.weights()[1], 0.6, 0.03);
}

TEST(Hybrid, L1FitRobustToOutlierTail) {
  // One predictor is right for 99% of points; the other matches only the
  // 1% huge-magnitude tail. LS chases the tail; L1 should stick with the
  // majority predictor.
  Rng rng(7);
  const std::size_t n = 20000;
  std::vector<std::int32_t> good(n), tail(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto base =
        static_cast<std::int32_t>(rng.uniform_index(100)) - 50;
    y[i] = base;
    good[i] = base + static_cast<std::int32_t>(rng.uniform_index(3)) - 1;
    tail[i] = 0;
    if (i % 100 == 0) {
      y[i] = static_cast<std::int32_t>(rng.uniform_index(100000));
      tail[i] = y[i];
      good[i] = 0;
    }
  }
  const auto ls = HybridModel::fit({good, tail}, y, 1e-6);
  const auto l1 = HybridModel::fit_l1({good, tail}, y, 1e-6);
  EXPECT_GT(l1.weights()[0], 0.85);             // majority predictor
  EXPECT_GT(ls.weights()[1], l1.weights()[1]);  // LS chases the tail more
}

TEST(Hybrid, SingleIsOneHot) {
  const auto m = HybridModel::single(3, 1);
  EXPECT_EQ(m.weights(), (std::vector<double>{0.0, 1.0, 0.0}));
  const std::array<std::int64_t, 3> p{5, 9, 2};
  EXPECT_EQ(m.combine(p), 9);
  EXPECT_THROW(HybridModel::single(3, 3), InvalidArgument);
}

TEST(Hybrid, EstimatedBitsOrdersPredictorsCorrectly) {
  Rng rng(8);
  const std::size_t n = 5000;
  std::vector<std::int32_t> good(n), bad(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<std::int32_t>(rng.uniform_index(2000)) - 1000;
    good[i] = y[i] + static_cast<std::int32_t>(rng.uniform_index(5)) - 2;
    bad[i] = y[i] + static_cast<std::int32_t>(rng.uniform_index(512)) - 256;
  }
  const auto pick_good = HybridModel::single(2, 0);
  const auto pick_bad = HybridModel::single(2, 1);
  EXPECT_LT(pick_good.estimated_bits({good, bad}, y),
            pick_bad.estimated_bits({good, bad}, y));
}

TEST(Hybrid, EstimatedBitsZeroForPerfectPrediction) {
  std::vector<std::int32_t> c(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) c[i] = y[i] = static_cast<int>(i);
  const auto m = HybridModel::single(1, 0);
  // perfect prediction: every delta is 0 -> 1 bit/sample by the proxy
  EXPECT_EQ(m.estimated_bits({c}, y), 100.0);
}

TEST(Hybrid, DeserializeRejectsBadCounts) {
  ByteWriter w;
  w.varint(0);
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(HybridModel::deserialize(r), CorruptStream);
}

}  // namespace
}  // namespace xfc
