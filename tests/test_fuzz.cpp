// Failure-injection / fuzz tests: randomly corrupted or truncated streams
// must raise XfcError (never crash, hang, or silently return wrong data),
// and randomized inputs must round-trip across every codec.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "archive/archive_reader.hpp"
#include "archive/archive_writer.hpp"
#include "core/rng.hpp"
#include "io/crc32.hpp"
#include "data/dataset.hpp"
#include "encode/backend.hpp"
#include "encode/miniflate.hpp"
#include "metrics/metrics.hpp"
#include "sz/classic.hpp"
#include "sz/compressor.hpp"
#include "sz/interpolation.hpp"
#include "test_util.hpp"
#include "zfp/zfp_codec.hpp"

namespace xfc {
namespace {

Field fuzz_field(std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(Shape{48, 56});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(i / 9.0) * 25.0 + rng.normal(0, 0.2));
  }
  return Field("fuzz", std::move(a));
}

/// Applies `n_mutations` random byte corruptions.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes,
                                 Rng& rng, int n_mutations) {
  for (int m = 0; m < n_mutations; ++m) {
    const std::size_t pos = rng.uniform_index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
  }
  return bytes;
}

/// Runs `decode` on many corrupted variants of `stream`. Every attempt must
/// either throw XfcError or (if the flip missed anything load-bearing,
/// which the CRC makes effectively impossible) reproduce valid output.
template <typename Decode>
void corruption_trials(const std::vector<std::uint8_t>& stream,
                       Decode&& decode, std::uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const auto corrupted = mutate(stream, rng, 1 + trial % 4);
    try {
      decode(corrupted);
    } catch (const XfcError&) {
      continue;  // expected
    }
  }
  // Truncations at random points.
  for (int trial = 0; trial < 30; ++trial) {
    auto truncated = stream;
    truncated.resize(rng.uniform_index(stream.size()));
    try {
      decode(truncated);
      FAIL() << "truncated stream decoded without error";
    } catch (const XfcError&) {
    }
  }
}

TEST(Fuzz, SzStreamCorruption) {
  const Field f = fuzz_field(1);
  const auto stream = sz_compress(f, SzOptions{});
  corruption_trials(stream, [](const auto& s) { sz_decompress(s); }, 101);
}

TEST(Fuzz, ClassicStreamCorruption) {
  const Field f = fuzz_field(2);
  const auto stream = classic_compress(f, ClassicOptions{});
  corruption_trials(stream, [](const auto& s) { classic_decompress(s); },
                    102);
}

TEST(Fuzz, InterpStreamCorruption) {
  const Field f = fuzz_field(3);
  const auto stream = interp_compress(f, InterpOptions{});
  corruption_trials(stream, [](const auto& s) { interp_decompress(s); },
                    103);
}

TEST(Fuzz, ZfpStreamCorruption) {
  const Field f = fuzz_field(4);
  const auto stream = zfp_compress(f, ZfpOptions{.tolerance = 1e-3});
  corruption_trials(stream, [](const auto& s) { zfp_decompress(s); }, 104);
}

/// A small two-field XFA1 archive with several tiles per field.
std::vector<std::uint8_t> fuzz_archive() {
  VectorSink sink;
  ArchiveWriter writer(sink);
  ArchiveFieldOptions opts;
  opts.tile = Shape{16, 16};
  writer.add_field(fuzz_field(21), opts);
  Field second = fuzz_field(22);
  second.set_name("fuzz2");
  opts.codec = CodecId::kInterp;
  writer.add_field(second, opts);
  writer.finish();
  return sink.take();
}

void expect_archive_corrupt(const std::vector<std::uint8_t>& bytes) {
  try {
    ArchiveReader::open_memory(bytes).read_all();
    FAIL() << "malformed archive decoded without error";
  } catch (const CorruptStream&) {
    // The archive contract is stricter than the generic codecs': every
    // malformed-archive failure must be CorruptStream specifically.
  }
}

TEST(Fuzz, ArchiveCorruption) {
  const auto archive = fuzz_archive();
  // Validate the pristine stream first so the trials below fail for the
  // right reason.
  ASSERT_EQ(ArchiveReader::open_memory(archive).read_all().size(), 2u);

  Rng rng(201);
  int decoded_fine = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const auto corrupted = mutate(archive, rng, 1 + trial % 4);
    try {
      ArchiveReader::open_memory(corrupted).read_all();
      ++decoded_fine;  // flip must have hit dead padding — CRCs make this
                       // effectively impossible
    } catch (const CorruptStream&) {
    }
  }
  EXPECT_EQ(decoded_fine, 0);
}

TEST(Fuzz, ArchiveTruncation) {
  const auto archive = fuzz_archive();
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial)
    expect_archive_corrupt(std::vector<std::uint8_t>(
        archive.begin(),
        archive.begin() + rng.uniform_index(archive.size())));
}

TEST(Fuzz, ArchiveShuffledIndexEntriesRejected) {
  // Swap the first two tile entries of the first field inside the footer
  // and re-seal the footer CRC: every entry still points at a valid XFC1
  // body whose stored CRC matches its *original* ordinal, so only the
  // position-dependent tile checksum can notice the shuffle. Works for any
  // tile sizes (entries swap wholesale), unlike a body swap which needs an
  // equal-size pair.
  const auto archive = fuzz_archive();
  const std::size_t total = archive.size();
  ByteReader tr(std::span<const std::uint8_t>(archive).subspan(total - 24));
  tr.u32();  // old footer CRC
  const std::uint64_t foff = tr.u64();
  const std::uint64_t fsize = tr.u64();
  std::vector<std::uint8_t> footer(
      archive.begin() + static_cast<std::ptrdiff_t>(foff),
      archive.begin() + static_cast<std::ptrdiff_t>(foff + fsize));

  // Walk the footer to the first field's tile entries (format documented
  // in archive_writer.hpp).
  ByteReader in(footer);
  in.raw(4);                    // "XFAF"
  ASSERT_GE(in.varint(), 1u);   // field count
  in.str();                     // name
  in.u8();                      // codec
  in.u8();                      // flags (fuzz_archive targets are plain)
  in.u8();                      // eb mode
  in.f64();                     // eb value
  in.f64();                     // abs eb
  (void)read_shape(in);
  (void)read_shape(in);
  ASSERT_GE(in.varint(), 2u);   // tile count
  const std::size_t e0 = in.position();
  in.varint(); in.varint(); in.u32();
  const std::size_t e1 = in.position();
  in.varint(); in.varint(); in.u32();
  const std::size_t e2 = in.position();

  std::vector<std::uint8_t> shuffled;
  shuffled.reserve(footer.size());
  shuffled.insert(shuffled.end(), footer.begin(), footer.begin() + e0);
  shuffled.insert(shuffled.end(), footer.begin() + e1, footer.begin() + e2);
  shuffled.insert(shuffled.end(), footer.begin() + e0, footer.begin() + e1);
  shuffled.insert(shuffled.end(), footer.begin() + e2, footer.end());
  ASSERT_EQ(shuffled.size(), footer.size());

  auto bytes = archive;
  std::copy(shuffled.begin(), shuffled.end(),
            bytes.begin() + static_cast<std::ptrdiff_t>(foff));
  const std::uint32_t crc = Crc32::of(shuffled);
  for (int i = 0; i < 4; ++i)
    bytes[total - 24 + i] = static_cast<std::uint8_t>(crc >> (8 * i));

  // The re-sealed index parses cleanly; decode must still fail.
  expect_archive_corrupt(bytes);
}

TEST(Fuzz, ArchiveAbsurdTileCountRejectedBeforeAllocation) {
  // A CRC-valid index declaring a {2^18, 2^18} field with 1x1 tiles claims
  // 2^36 tile entries — the geometry check passes, so the byte-budget
  // check must reject it before reserving terabytes.
  const std::array<std::uint8_t, 4> head{'X', 'F', 'A', '1'};
  const std::array<std::uint8_t, 4> fmagic{'X', 'F', 'A', 'F'};

  ByteWriter footer;
  footer.raw(fmagic);
  footer.varint(1);  // one field
  footer.str("f");
  footer.u8(0);  // codec kSz
  footer.u8(0);  // flags
  footer.u8(0);  // eb mode
  footer.f64(1e-3);
  footer.f64(1e-3);
  write_shape(footer, Shape{std::size_t{1} << 18, std::size_t{1} << 18});
  write_shape(footer, Shape{1, 1});
  footer.varint(std::uint64_t{1} << 36);  // tile count (matches geometry)

  ByteWriter archive;
  archive.raw(head);
  archive.u8(1);  // version
  const std::uint64_t footer_offset = archive.size();
  archive.raw(footer.bytes());
  archive.u32(Crc32::of(footer.bytes()));
  archive.u64(footer_offset);
  archive.u64(footer.size());
  archive.raw(head);

  EXPECT_THROW(ArchiveReader::open_memory(archive.bytes()), CorruptStream);
}

TEST(Fuzz, MiniflateAbsurdDeclaredSizeRejected) {
  // Declared size within the absolute cap but far beyond what the present
  // bytes could expand to must fail before the output buffer is sized.
  ByteWriter w;
  w.varint(std::uint64_t{1} << 39);
  w.u8(1);  // miniflate method
  w.u8(0);  // truncated table junk
  EXPECT_THROW(miniflate_decompress(w.bytes()), CorruptStream);
}

TEST(Fuzz, ArchiveGarbageInput) {
  Rng rng(203);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      ArchiveReader::open_memory(garbage).read_all();
      FAIL() << "garbage decoded as an archive";
    } catch (const CorruptStream&) {
    }
  }
}

TEST(Fuzz, MiniflateGarbageInput) {
  // Arbitrary bytes fed straight into the decompressor must never crash.
  Rng rng(105);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      miniflate_decompress(garbage);
    } catch (const XfcError&) {
    }
  }
}

TEST(LosslessBackend, AutoCompressesEntropyFlatButMatchStructuredData) {
  // A repeated 0..255 ramp has exactly 8 bits/byte of order-0 entropy and
  // no RLE runs, but is hugely LZ-compressible; the kAuto backend-selection
  // probes must not store such data raw.
  std::vector<std::uint8_t> ramp(std::size_t{1} << 16);
  for (std::size_t i = 0; i < ramp.size(); ++i)
    ramp[i] = static_cast<std::uint8_t>(i & 0xFF);
  const auto out = lossless_compress(ramp, LosslessBackend::kAuto);
  EXPECT_LT(out.size(), ramp.size() / 10);
  EXPECT_EQ(lossless_decompress(out), ramp);
}

TEST(Fuzz, LosslessBackendGarbageInput) {
  Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_index(256));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      lossless_decompress(garbage);
    } catch (const XfcError&) {
    }
  }
}

class RandomRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRoundtrip, AllCodecsHoldBoundOnRandomizedFields) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Random geometry and random smooth+noise mixture.
  const std::size_t h = 17 + rng.uniform_index(60);
  const std::size_t w = 17 + rng.uniform_index(60);
  F32Array a(Shape{h, w});
  const double freq = rng.uniform(0.05, 0.6);
  const double amp = rng.uniform(0.1, 1e4);
  const double noise = rng.uniform(0.0, amp * 0.02);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(amp * std::sin(freq * static_cast<double>(i)) +
                              rng.normal(0.0, noise));
  const Field field("rand", std::move(a));
  const double rel_eb = std::pow(10.0, -rng.uniform(2.0, 4.5));
  const double abs_eb = rel_eb * field.value_range();

  {
    SzOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = sz_decompress(sz_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "sz seed " << seed;
  }
  {
    ClassicOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = classic_decompress(classic_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "classic seed " << seed;
  }
  {
    InterpOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = interp_decompress(interp_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "interp seed " << seed;
  }
  {
    ZfpOptions opt;
    opt.tolerance = abs_eb;
    const Field out = zfp_decompress(zfp_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              abs_eb)
        << "zfp seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundtrip,
                         ::testing::Range<std::uint64_t>(1000, 1016));

TEST(Fuzz, MiniflateRandomRoundtrips) {
  Rng rng(107);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = rng.uniform_index(50000);
    std::vector<std::uint8_t> data(n);
    const int mode = trial % 4;
    for (std::size_t i = 0; i < n; ++i) {
      if (mode == 0) data[i] = static_cast<std::uint8_t>(rng.next_u64());
      else if (mode == 1) data[i] = static_cast<std::uint8_t>(i / 100);
      else if (mode == 2) data[i] = static_cast<std::uint8_t>(
          rng.uniform_index(3));
      else data[i] = static_cast<std::uint8_t>((i * i) >> 3);
    }
    EXPECT_EQ(miniflate_decompress(miniflate_compress(data)), data)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace xfc
