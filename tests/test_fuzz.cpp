// Failure-injection / fuzz tests: randomly corrupted or truncated streams
// must raise XfcError (never crash, hang, or silently return wrong data),
// and randomized inputs must round-trip across every codec.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "data/dataset.hpp"
#include "encode/backend.hpp"
#include "encode/miniflate.hpp"
#include "metrics/metrics.hpp"
#include "sz/classic.hpp"
#include "sz/compressor.hpp"
#include "sz/interpolation.hpp"
#include "test_util.hpp"
#include "zfp/zfp_codec.hpp"

namespace xfc {
namespace {

Field fuzz_field(std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(Shape{48, 56});
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>(std::sin(i / 9.0) * 25.0 + rng.normal(0, 0.2));
  }
  return Field("fuzz", std::move(a));
}

/// Applies `n_mutations` random byte corruptions.
std::vector<std::uint8_t> mutate(std::vector<std::uint8_t> bytes,
                                 Rng& rng, int n_mutations) {
  for (int m = 0; m < n_mutations; ++m) {
    const std::size_t pos = rng.uniform_index(bytes.size());
    bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
  }
  return bytes;
}

/// Runs `decode` on many corrupted variants of `stream`. Every attempt must
/// either throw XfcError or (if the flip missed anything load-bearing,
/// which the CRC makes effectively impossible) reproduce valid output.
template <typename Decode>
void corruption_trials(const std::vector<std::uint8_t>& stream,
                       Decode&& decode, std::uint64_t seed) {
  Rng rng(seed);
  for (int trial = 0; trial < 60; ++trial) {
    const auto corrupted = mutate(stream, rng, 1 + trial % 4);
    try {
      decode(corrupted);
    } catch (const XfcError&) {
      continue;  // expected
    }
  }
  // Truncations at random points.
  for (int trial = 0; trial < 30; ++trial) {
    auto truncated = stream;
    truncated.resize(rng.uniform_index(stream.size()));
    try {
      decode(truncated);
      FAIL() << "truncated stream decoded without error";
    } catch (const XfcError&) {
    }
  }
}

TEST(Fuzz, SzStreamCorruption) {
  const Field f = fuzz_field(1);
  const auto stream = sz_compress(f, SzOptions{});
  corruption_trials(stream, [](const auto& s) { sz_decompress(s); }, 101);
}

TEST(Fuzz, ClassicStreamCorruption) {
  const Field f = fuzz_field(2);
  const auto stream = classic_compress(f, ClassicOptions{});
  corruption_trials(stream, [](const auto& s) { classic_decompress(s); },
                    102);
}

TEST(Fuzz, InterpStreamCorruption) {
  const Field f = fuzz_field(3);
  const auto stream = interp_compress(f, InterpOptions{});
  corruption_trials(stream, [](const auto& s) { interp_decompress(s); },
                    103);
}

TEST(Fuzz, ZfpStreamCorruption) {
  const Field f = fuzz_field(4);
  const auto stream = zfp_compress(f, ZfpOptions{.tolerance = 1e-3});
  corruption_trials(stream, [](const auto& s) { zfp_decompress(s); }, 104);
}

TEST(Fuzz, MiniflateGarbageInput) {
  // Arbitrary bytes fed straight into the decompressor must never crash.
  Rng rng(105);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_index(512));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      miniflate_decompress(garbage);
    } catch (const XfcError&) {
    }
  }
}

TEST(LosslessBackend, AutoCompressesEntropyFlatButMatchStructuredData) {
  // A repeated 0..255 ramp has exactly 8 bits/byte of order-0 entropy and
  // no RLE runs, but is hugely LZ-compressible; the kAuto backend-selection
  // probes must not store such data raw.
  std::vector<std::uint8_t> ramp(std::size_t{1} << 16);
  for (std::size_t i = 0; i < ramp.size(); ++i)
    ramp[i] = static_cast<std::uint8_t>(i & 0xFF);
  const auto out = lossless_compress(ramp, LosslessBackend::kAuto);
  EXPECT_LT(out.size(), ramp.size() / 10);
  EXPECT_EQ(lossless_decompress(out), ramp);
}

TEST(Fuzz, LosslessBackendGarbageInput) {
  Rng rng(106);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> garbage(1 + rng.uniform_index(256));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_u64());
    try {
      lossless_decompress(garbage);
    } catch (const XfcError&) {
    }
  }
}

class RandomRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomRoundtrip, AllCodecsHoldBoundOnRandomizedFields) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  // Random geometry and random smooth+noise mixture.
  const std::size_t h = 17 + rng.uniform_index(60);
  const std::size_t w = 17 + rng.uniform_index(60);
  F32Array a(Shape{h, w});
  const double freq = rng.uniform(0.05, 0.6);
  const double amp = rng.uniform(0.1, 1e4);
  const double noise = rng.uniform(0.0, amp * 0.02);
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(amp * std::sin(freq * static_cast<double>(i)) +
                              rng.normal(0.0, noise));
  const Field field("rand", std::move(a));
  const double rel_eb = std::pow(10.0, -rng.uniform(2.0, 4.5));
  const double abs_eb = rel_eb * field.value_range();

  {
    SzOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = sz_decompress(sz_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "sz seed " << seed;
  }
  {
    ClassicOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = classic_decompress(classic_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "classic seed " << seed;
  }
  {
    InterpOptions opt;
    opt.eb = ErrorBound::relative(rel_eb);
    const Field out = interp_decompress(interp_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              test::bound_tolerance(abs_eb, field))
        << "interp seed " << seed;
  }
  {
    ZfpOptions opt;
    opt.tolerance = abs_eb;
    const Field out = zfp_decompress(zfp_compress(field, opt));
    EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
              abs_eb)
        << "zfp seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRoundtrip,
                         ::testing::Range<std::uint64_t>(1000, 1016));

TEST(Fuzz, MiniflateRandomRoundtrips) {
  Rng rng(107);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = rng.uniform_index(50000);
    std::vector<std::uint8_t> data(n);
    const int mode = trial % 4;
    for (std::size_t i = 0; i < n; ++i) {
      if (mode == 0) data[i] = static_cast<std::uint8_t>(rng.next_u64());
      else if (mode == 1) data[i] = static_cast<std::uint8_t>(i / 100);
      else if (mode == 2) data[i] = static_cast<std::uint8_t>(
          rng.uniform_index(3));
      else data[i] = static_cast<std::uint8_t>((i * i) >> 3);
    }
    EXPECT_EQ(miniflate_decompress(miniflate_compress(data)), data)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace xfc
