// Cross-cutting property tests: determinism of every codec, cross-codec
// reconstruction invariants of dual quantization, coder self-consistency.

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "crossfield/crossfield.hpp"
#include "data/dataset.hpp"
#include "encode/huffman.hpp"
#include "encode/miniflate.hpp"
#include "io/bitstream.hpp"
#include "metrics/metrics.hpp"
#include "sz/classic.hpp"
#include "sz/compressor.hpp"
#include "sz/interpolation.hpp"
#include "zfp/zfp_codec.hpp"

namespace xfc {
namespace {

Field prop_field(std::uint64_t seed) {
  Rng rng(seed);
  F32Array a(Shape{40, 52});
  for (std::size_t i = 0; i < a.size(); ++i)
    a[i] = static_cast<float>(std::sin(i / 7.0) * 30.0 +
                              rng.normal(0.0, 0.15));
  return Field("prop", std::move(a));
}

TEST(Determinism, SzStreamsAreBitIdenticalAcrossRuns) {
  const Field f = prop_field(1);
  EXPECT_EQ(sz_compress(f, SzOptions{}), sz_compress(f, SzOptions{}));
}

TEST(Determinism, ClassicInterpZfpStreamsAreBitIdentical) {
  const Field f = prop_field(2);
  EXPECT_EQ(classic_compress(f, ClassicOptions{}),
            classic_compress(f, ClassicOptions{}));
  EXPECT_EQ(interp_compress(f, InterpOptions{}),
            interp_compress(f, InterpOptions{}));
  EXPECT_EQ(zfp_compress(f, ZfpOptions{.tolerance = 1e-3}),
            zfp_compress(f, ZfpOptions{.tolerance = 1e-3}));
}

TEST(Determinism, CrossFieldStreamBitIdenticalGivenSameModel) {
  const Field t = prop_field(3);
  Field a0 = prop_field(4);
  a0.set_name("A0");
  const std::vector<const Field*> anchors{&a0};
  const CfnnModel model(2, 2, CfnnConfig{8, 4, 3}, 42);
  CrossFieldOptions opt;
  EXPECT_EQ(cross_field_compress(t, anchors, model, opt),
            cross_field_compress(t, anchors, model, opt));
}

TEST(Determinism, TrainingIsSeedDeterministic) {
  const Field t = prop_field(5);
  Field a0 = prop_field(6);
  a0.set_name("A0");
  const std::vector<const Field*> anchors{&a0};
  CfnnTrainOptions train;
  train.epochs = 3;
  train.patches_per_epoch = 16;
  train.patch = 16;
  train.batch = 8;
  const CfnnModel m1 =
      train_cross_field_model(t, anchors, CfnnConfig{8, 4, 3}, train);
  const CfnnModel m2 =
      train_cross_field_model(t, anchors, CfnnConfig{8, 4, 3}, train);
  EXPECT_EQ(m1.save_bytes(), m2.save_bytes());
}

TEST(DualQuantInvariant, AllPredictionCodecsShareOneReconstruction) {
  // Dual quantization means the reconstruction depends only on (field, eb),
  // not on the predictor: sz, interp, and cross-field all decode to
  // exactly dequantize(prequantize(field)).
  const Field f = prop_field(7);
  SzOptions sopt;
  sopt.eb = ErrorBound::relative(1e-3);
  const Field expected = sz_reconstruct(f, sopt);

  const Field via_sz = sz_decompress(sz_compress(f, sopt));
  EXPECT_EQ(via_sz.array().vec(), expected.array().vec());

  InterpOptions iopt;
  iopt.eb = ErrorBound::relative(1e-3);
  const Field via_interp = interp_decompress(interp_compress(f, iopt));
  EXPECT_EQ(via_interp.array().vec(), expected.array().vec());

  SzOptions s2 = sopt;
  s2.predictor = SzPredictor::kLorenzoRegression;
  const Field via_reg = sz_decompress(sz_compress(f, s2));
  EXPECT_EQ(via_reg.array().vec(), expected.array().vec());
}

TEST(DualQuantInvariant, PsnrIdenticalAcrossPredictorsAtSameBound) {
  // Corollary the paper uses to report only ratios in Table II: quality
  // metrics are exactly equal for baseline and ours at the same bound.
  const Field f = prop_field(8);
  SzOptions sopt;
  sopt.eb = ErrorBound::relative(5e-4);
  InterpOptions iopt;
  iopt.eb = ErrorBound::relative(5e-4);
  const Field a = sz_decompress(sz_compress(f, sopt));
  const Field b = interp_decompress(interp_compress(f, iopt));
  EXPECT_EQ(psnr(f, a), psnr(f, b));
  EXPECT_EQ(ssim(f, a), ssim(f, b));
}

TEST(Monotonicity, PsnrIncreasesAsBoundTightens) {
  const Field f = prop_field(9);
  double last_psnr = 0.0;
  for (double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    SzOptions opt;
    opt.eb = ErrorBound::relative(eb);
    const Field out = sz_decompress(sz_compress(f, opt));
    const double p = psnr(f, out);
    EXPECT_GT(p, last_psnr);
    last_psnr = p;
  }
}

TEST(Monotonicity, CompressedSizeGrowsAsBoundTightens) {
  const Field f = prop_field(10);
  std::size_t last = 0;
  for (double eb : {1e-2, 1e-3, 1e-4, 1e-5}) {
    SzOptions opt;
    opt.eb = ErrorBound::relative(eb);
    const std::size_t size = sz_compress(f, opt).size();
    EXPECT_GT(size, last);
    last = size;
  }
}

TEST(DualQuantInvariant, ExtremeMagnitudeFieldsRoundTripWithinBound) {
  // Values scaled so quantization codes reach the ±2^30 limit (inclusive
  // after the boundary fix). Order-2 Lorenzo predictions on such codes
  // leave the int32 range; encoder and decoder must still agree, and the
  // reconstruction must honor the bound exactly.
  const double abs_eb = 0.5;  // step 1.0: values ARE the codes
  const float big = 1073741824.0f;  // 2^30, exactly representable

  F32Array flat(Shape{16, 16});
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      flat(i, j) = ((i + j) % 2 == 0) ? big : -big;
  F32Array ramp(Shape{256});
  for (std::size_t i = 0; i < 256; ++i)
    ramp[i] = ((i % 3 == 0) ? 1.0f : -1.0f) *
              (big - 1024.0f * static_cast<float>(i));

  for (const F32Array* a : {&flat, &ramp}) {
    const Field field("extreme", *a);
    for (auto predictor : {SzPredictor::kLorenzo1, SzPredictor::kLorenzo2,
                           SzPredictor::kLorenzoRegression}) {
      SzOptions opt;
      opt.eb = ErrorBound::absolute(abs_eb);
      opt.predictor = predictor;
      const Field out = sz_decompress(sz_compress(field, opt));
      EXPECT_LE(max_abs_error(field.array().span(), out.array().span()),
                abs_eb)
          << "ndim " << a->shape().ndim() << " predictor "
          << static_cast<int>(predictor);
    }
  }
}

TEST(HuffmanInvariant, StreamLengthEqualsSumOfCodeLengths) {
  Rng rng(11);
  std::vector<std::uint64_t> freqs(64, 0);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 3000; ++i) {
    const auto s = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(63, rng.uniform_index(40) *
                                        rng.uniform_index(3)));
    symbols.push_back(s);
    ++freqs[s];
  }
  const auto code = HuffmanCode::from_frequencies(freqs);
  BitWriter bw;
  std::size_t expected_bits = 0;
  for (auto s : symbols) {
    code.encode(bw, s);
    expected_bits += code.length_of(s);
  }
  EXPECT_EQ(bw.bit_count(), expected_bits);
}

TEST(MiniflateInvariant, CompressionIsIdempotentlySafe) {
  // Compressing already-compressed data must still round-trip and must not
  // blow up in size.
  Rng rng(12);
  std::vector<std::uint8_t> data(30000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i / 64);
  const auto once = miniflate_compress(data);
  const auto twice = miniflate_compress(once);
  EXPECT_LE(twice.size(), once.size() + 64);
  EXPECT_EQ(miniflate_decompress(miniflate_decompress(twice)), data);
}

TEST(ZfpInvariant, DecompressionIsDeterministic) {
  const Field f = prop_field(13);
  const auto stream = zfp_compress(f, ZfpOptions{.tolerance = 1e-2});
  const Field a = zfp_decompress(stream);
  const Field b = zfp_decompress(stream);
  EXPECT_EQ(a.array().vec(), b.array().vec());
}

TEST(Generators, AllKindsDeterministicAcrossCalls) {
  for (auto kind : {DatasetKind::kScale, DatasetKind::kCesm,
                    DatasetKind::kHurricane}) {
    const Shape dims = kind == DatasetKind::kCesm ? Shape{48, 64}
                                                  : Shape{4, 32, 32};
    const auto a = make_dataset(kind, dims, 77);
    const auto b = make_dataset(kind, dims, 77);
    ASSERT_EQ(a.fields.size(), b.fields.size());
    for (std::size_t i = 0; i < a.fields.size(); ++i)
      EXPECT_EQ(a.fields[i].array().vec(), b.fields[i].array().vec())
          << dataset_name(kind) << "/" << a.fields[i].name();
  }
}

}  // namespace
}  // namespace xfc
