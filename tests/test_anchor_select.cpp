// Tests for automatic anchor selection (paper §V future work).

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "crossfield/anchor_select.hpp"
#include "data/dataset.hpp"

namespace xfc {
namespace {

/// Builds fields where GOOD linearly drives the target's differences,
/// PARTIAL drives them weakly, and NOISE is independent.
struct SelectSet {
  Field target, good, partial, noise;
};

SelectSet make_select_set(std::uint64_t seed) {
  Rng rng(seed);
  const Shape shape{64, 80};
  SelectSet s{Field("TGT", F32Array(shape)), Field("GOOD", F32Array(shape)),
              Field("PARTIAL", F32Array(shape)),
              Field("NOISE", F32Array(shape))};
  for (std::size_t i = 0; i < shape.size(); ++i) {
    const double x = static_cast<double>(i % 80) / 7.0;
    const double y = static_cast<double>(i / 80) / 9.0;
    const double base = std::sin(x) * std::cos(y) * 12.0;
    const double weak = std::cos(x * 1.3) * 5.0;
    s.good.array()[i] = static_cast<float>(base + rng.normal(0, 0.02));
    s.partial.array()[i] = static_cast<float>(weak + rng.normal(0, 0.02));
    s.noise.array()[i] = static_cast<float>(rng.normal(0, 3.0));
    s.target.array()[i] =
        static_cast<float>(base + 0.3 * weak + rng.normal(0, 0.05));
  }
  return s;
}

TEST(AnchorSelect, RanksInformativeAnchorFirst) {
  const SelectSet s = make_select_set(1);
  const auto chosen = select_anchors(
      s.target, {&s.noise, &s.partial, &s.good}, {.max_anchors = 3});
  ASSERT_GE(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].name, "GOOD");
  EXPECT_GT(chosen[0].marginal_r2, 0.5);
}

TEST(AnchorSelect, MarginalGainsDecreaseAndCumulate) {
  const SelectSet s = make_select_set(2);
  const auto chosen = select_anchors(
      s.target, {&s.good, &s.partial, &s.noise},
      {.max_anchors = 3, .min_gain = 0.0001});
  ASSERT_GE(chosen.size(), 2u);
  EXPECT_GE(chosen[0].marginal_r2, chosen[1].marginal_r2);
  for (std::size_t i = 1; i < chosen.size(); ++i)
    EXPECT_NEAR(chosen[i].cumulative_r2,
                chosen[i - 1].cumulative_r2 + chosen[i].marginal_r2, 1e-9);
}

TEST(AnchorSelect, PureNoiseAnchorRejected) {
  const SelectSet s = make_select_set(3);
  const auto chosen =
      select_anchors(s.target, {&s.noise}, {.max_anchors = 1,
                                            .min_gain = 0.05});
  EXPECT_TRUE(chosen.empty());
}

TEST(AnchorSelect, SkipsTargetItself) {
  const SelectSet s = make_select_set(4);
  const auto chosen = select_anchors(s.target, {&s.target, &s.good});
  for (const auto& c : chosen) EXPECT_NE(c.name, "TGT");
}

TEST(AnchorSelect, RespectsMaxAnchors) {
  const SelectSet s = make_select_set(5);
  const auto chosen = select_anchors(
      s.target, {&s.good, &s.partial, &s.noise},
      {.max_anchors = 1, .min_gain = 0.0});
  EXPECT_LE(chosen.size(), 1u);
}

TEST(AnchorSelect, ValidatesShapes) {
  Field t("T", F32Array(Shape{16, 16}));
  Field bad("B", F32Array(Shape{16, 17}));
  EXPECT_THROW(select_anchors(t, {&bad}), InvalidArgument);
  Field oned("O", F32Array(Shape{64}));
  EXPECT_THROW(select_anchors(oned, {&t}), InvalidArgument);
}

TEST(AnchorSelect, RecoversTable3FlavourOnCesm) {
  // On the CESM-like dataset, LWCF's best anchors should come from the
  // radiation family (FLUT/FLUTC/FLNT/FLNTC), not the cloud fractions —
  // matching the paper's physics-chosen Table III.
  const auto ds = make_dataset(DatasetKind::kCesm, Shape{96, 128}, 6);
  const Field* lwcf = ds.find("LWCF");
  std::vector<const Field*> candidates;
  for (const Field& f : ds.fields)
    if (f.name() != "LWCF") candidates.push_back(&f);
  const auto chosen = select_anchors(*lwcf, candidates, {.max_anchors = 2});
  ASSERT_GE(chosen.size(), 1u);
  const std::string& first = chosen[0].name;
  EXPECT_TRUE(first == "FLUT" || first == "FLUTC" || first == "FLNT" ||
              first == "FLNTC")
      << "picked " << first;
}

TEST(AnchorSelect, DeterministicAcrossCalls) {
  const SelectSet s = make_select_set(7);
  const auto a = select_anchors(s.target, {&s.good, &s.partial, &s.noise});
  const auto b = select_anchors(s.target, {&s.good, &s.partial, &s.noise});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].marginal_r2, b[i].marginal_r2);
  }
}

}  // namespace
}  // namespace xfc
