// Unit tests for the Lorenzo and regression predictors.

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "io/bytebuffer.hpp"
#include "predict/lorenzo.hpp"
#include "predict/regression.hpp"

namespace xfc {
namespace {

/// Fills a 2D array with a polynomial a + b*i + c*j + d*i*j + e*i^2 + f*j^2.
I32Array poly2d(std::size_t h, std::size_t w, int a, int b, int c, int d,
                int e, int f) {
  I32Array out(Shape{h, w});
  for (std::size_t i = 0; i < h; ++i)
    for (std::size_t j = 0; j < w; ++j)
      out(i, j) = static_cast<std::int32_t>(
          a + b * static_cast<int>(i) + c * static_cast<int>(j) +
          d * static_cast<int>(i * j) + e * static_cast<int>(i * i) +
          f * static_cast<int>(j * j));
  return out;
}

TEST(Lorenzo1, ExactOnConstant2D) {
  const auto codes = poly2d(8, 9, 5, 0, 0, 0, 0, 0);
  const auto pred = lorenzo_predict_all(codes, LorenzoOrder::kOne);
  // Interior points are predicted exactly; boundary misses the constant.
  for (std::size_t i = 1; i < 8; ++i)
    for (std::size_t j = 1; j < 9; ++j) EXPECT_EQ(pred(i, j), codes(i, j));
}

TEST(Lorenzo1, ExactOnLinear2D) {
  // 1-layer Lorenzo annihilates polynomials of total degree <= 1; the
  // bilinear i*j term needs the 2-layer stencil (checked below).
  const auto codes = poly2d(10, 10, 3, 2, -4, 0, 0, 0);
  const auto pred = lorenzo_predict_all(codes, LorenzoOrder::kOne);
  for (std::size_t i = 1; i < 10; ++i)
    for (std::size_t j = 1; j < 10; ++j) EXPECT_EQ(pred(i, j), codes(i, j));
}

TEST(Lorenzo1, ExactOnBilinearCrossTerm) {
  const auto codes = poly2d(10, 10, 3, 2, -4, 5, 0, 0);
  const auto pred2 = lorenzo_predict_all(codes, LorenzoOrder::kTwo);
  for (std::size_t i = 2; i < 10; ++i)
    for (std::size_t j = 2; j < 10; ++j) EXPECT_EQ(pred2(i, j), codes(i, j));
}

TEST(Lorenzo2, ExactOnQuadratic2D) {
  const auto codes = poly2d(12, 12, 1, 2, 3, -2, 4, -1);
  const auto pred1 = lorenzo_predict_all(codes, LorenzoOrder::kOne);
  const auto pred2 = lorenzo_predict_all(codes, LorenzoOrder::kTwo);
  bool l1_misses = false;
  for (std::size_t i = 2; i < 12; ++i)
    for (std::size_t j = 2; j < 12; ++j) {
      EXPECT_EQ(pred2(i, j), codes(i, j));
      if (pred1(i, j) != codes(i, j)) l1_misses = true;
    }
  EXPECT_TRUE(l1_misses);  // quadratics genuinely need layer 2
}

TEST(Lorenzo1, ExactOnLinear1D3D) {
  // 1D: layer 1 reproduces constants (previous value), layer 2 linears.
  I32Array con(Shape{32});
  for (std::size_t i = 0; i < 32; ++i) con(i) = 9;
  const auto pc = lorenzo_predict_all(con, LorenzoOrder::kOne);
  for (std::size_t i = 1; i < 32; ++i) EXPECT_EQ(pc(i), con(i));

  I32Array one(Shape{32});
  for (std::size_t i = 0; i < 32; ++i)
    one(i) = 7 + 3 * static_cast<int>(i);
  const auto p1 = lorenzo_predict_all(one, LorenzoOrder::kTwo);
  for (std::size_t i = 2; i < 32; ++i) EXPECT_EQ(p1(i), one(i));

  I32Array tri(Shape{5, 6, 7});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 7; ++k)
        tri(i, j, k) =
            static_cast<std::int32_t>(11 + 2 * i + 3 * j - k);
  const auto p3 = lorenzo_predict_all(tri, LorenzoOrder::kOne);
  for (std::size_t i = 1; i < 5; ++i)
    for (std::size_t j = 1; j < 6; ++j)
      for (std::size_t k = 1; k < 7; ++k)
        EXPECT_EQ(p3(i, j, k), tri(i, j, k));
}

TEST(Lorenzo, BoundaryUsesZeroConvention) {
  I32Array codes(Shape{4, 4});
  for (auto& v : codes.vec()) v = 10;
  // At the origin no neighbours exist -> prediction 0.
  EXPECT_EQ(lorenzo_at_2d(codes, 0, 0, LorenzoOrder::kOne), 0);
  // First row: only the left neighbour exists.
  EXPECT_EQ(lorenzo_at_2d(codes, 0, 1, LorenzoOrder::kOne), 10);
  // First column: only the upper neighbour.
  EXPECT_EQ(lorenzo_at_2d(codes, 1, 0, LorenzoOrder::kOne), 10);
}

TEST(Lorenzo, PredictAllMatchesPointwise) {
  Rng rng(4);
  I32Array codes(Shape{9, 11});
  for (auto& v : codes.vec())
    v = static_cast<std::int32_t>(rng.uniform_index(2000)) - 1000;
  for (auto order : {LorenzoOrder::kOne, LorenzoOrder::kTwo}) {
    const auto bulk = lorenzo_predict_all(codes, order);
    for (std::size_t i = 0; i < 9; ++i)
      for (std::size_t j = 0; j < 11; ++j)
        EXPECT_EQ(bulk(i, j), lorenzo_at_2d(codes, i, j, order));
  }
}

TEST(Lorenzo, PredictAllMatchesPointwise3D) {
  Rng rng(5);
  I32Array codes(Shape{4, 5, 6});
  for (auto& v : codes.vec())
    v = static_cast<std::int32_t>(rng.uniform_index(500)) - 250;
  for (auto order : {LorenzoOrder::kOne, LorenzoOrder::kTwo}) {
    const auto bulk = lorenzo_predict_all(codes, order);
    for (std::size_t i = 0; i < 4; ++i)
      for (std::size_t j = 0; j < 5; ++j)
        for (std::size_t k = 0; k < 6; ++k)
          EXPECT_EQ(bulk(i, j, k), lorenzo_at_3d(codes, i, j, k, order));
  }
}

TEST(Lorenzo, BulkMatchesAtOnExtremeMagnitudeCodes) {
  // Regression test for the encoder/decoder prediction divergence: bulk
  // predictions (the encoder side) used to be clamped to int32 while
  // lorenzo_at_* (the decoder side) predicts in unclamped int64. Codes at
  // ±2^30 drive predictions past the int32 range, where the two must still
  // agree exactly.
  const std::int32_t big = std::int32_t{1} << 30;

  I32Array one(Shape{32});
  for (std::size_t i = 0; i < 32; ++i) one(i) = (i % 2 == 0) ? big : -big;
  I32Array two(Shape{12, 13});
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = 0; j < 13; ++j)
      two(i, j) = ((i + j) % 2 == 0) ? big : -big;
  I32Array tri(Shape{5, 6, 7});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 6; ++j)
      for (std::size_t k = 0; k < 7; ++k)
        tri(i, j, k) = ((i + j + k) % 2 == 0) ? big : -big;

  bool left_int32 = false;
  for (auto order : {LorenzoOrder::kOne, LorenzoOrder::kTwo}) {
    const auto p1 = lorenzo_predict_all(one, order);
    for (std::size_t i = 0; i < 32; ++i)
      ASSERT_EQ(p1(i), lorenzo_at_1d(one, i, order)) << "1d i=" << i;
    const auto p2 = lorenzo_predict_all(two, order);
    for (std::size_t i = 0; i < 12; ++i)
      for (std::size_t j = 0; j < 13; ++j) {
        ASSERT_EQ(p2(i, j), lorenzo_at_2d(two, i, j, order))
            << "2d " << i << "," << j;
        if (p2(i, j) > INT32_MAX || p2(i, j) < INT32_MIN) left_int32 = true;
      }
    const auto p3 = lorenzo_predict_all(tri, order);
    for (std::size_t i = 0; i < 5; ++i)
      for (std::size_t j = 0; j < 6; ++j)
        for (std::size_t k = 0; k < 7; ++k)
          ASSERT_EQ(p3(i, j, k), lorenzo_at_3d(tri, i, j, k, order))
              << "3d " << i << "," << j << "," << k;
  }
  // The premise of the test: some predictions genuinely leave int32.
  EXPECT_TRUE(left_int32);
}

TEST(Regression, RecoversExactPlanePerBlock) {
  // A globally linear field is reproduced exactly by block regression
  // (up to coefficient float32 rounding).
  const auto codes = poly2d(24, 30, 100, 7, -3, 0, 0, 0);
  const auto reg = RegressionPredictor::fit(codes, 6);
  const auto pred = reg.predict_all(codes.shape());
  for (std::size_t i = 0; i < 24; ++i)
    for (std::size_t j = 0; j < 30; ++j)
      EXPECT_NEAR(pred(i, j), codes(i, j), 1);
}

TEST(Regression, PartialEdgeBlocksHandled) {
  const auto codes = poly2d(13, 17, 5, 2, 1, 0, 0, 0);  // not multiples of 6
  const auto reg = RegressionPredictor::fit(codes, 6);
  const auto pred = reg.predict_all(codes.shape());
  for (std::size_t i = 0; i < 13; ++i)
    for (std::size_t j = 0; j < 17; ++j)
      EXPECT_NEAR(pred(i, j), codes(i, j), 1);
}

TEST(Regression, ThreeDPlane) {
  I32Array codes(Shape{7, 8, 9});
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      for (std::size_t k = 0; k < 9; ++k)
        codes(i, j, k) =
            static_cast<std::int32_t>(10 + 4 * i - 2 * j + 3 * k);
  const auto reg = RegressionPredictor::fit(codes, 4);
  const auto pred = reg.predict_all(codes.shape());
  for (std::size_t i = 0; i < codes.size(); ++i)
    EXPECT_NEAR(pred[i], codes[i], 1);
}

TEST(Regression, PredictAllMatchesAt) {
  Rng rng(6);
  I32Array codes(Shape{15, 14});
  for (auto& v : codes.vec())
    v = static_cast<std::int32_t>(rng.uniform_index(100));
  const auto reg = RegressionPredictor::fit(codes, 5);
  const auto bulk = reg.predict_all(codes.shape());
  for (std::size_t i = 0; i < 15; ++i)
    for (std::size_t j = 0; j < 14; ++j)
      EXPECT_EQ(bulk(i, j), reg.at(codes.shape(), i, j));
}

TEST(Regression, SerializeRoundtrip) {
  Rng rng(7);
  I32Array codes(Shape{10, 12});
  for (auto& v : codes.vec())
    v = static_cast<std::int32_t>(rng.uniform_index(1000));
  const auto reg = RegressionPredictor::fit(codes, 6);

  ByteWriter w;
  reg.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  const auto restored = RegressionPredictor::deserialize(r, codes.shape());

  const auto a = reg.predict_all(codes.shape());
  const auto b = restored.predict_all(codes.shape());
  EXPECT_EQ(a.vec(), b.vec());
}

TEST(Regression, DeserializeRejectsMismatchedShape) {
  I32Array codes(Shape{10, 12});
  const auto reg = RegressionPredictor::fit(codes, 6);
  ByteWriter w;
  reg.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(RegressionPredictor::deserialize(r, Shape{20, 24}),
               CorruptStream);
}

TEST(Regression, RejectsTinyBlock) {
  I32Array codes(Shape{8, 8});
  EXPECT_THROW(RegressionPredictor::fit(codes, 1), InvalidArgument);
}

}  // namespace
}  // namespace xfc
