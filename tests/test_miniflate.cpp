// Unit tests for the miniflate byte compressor, RLE and backend selection.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "encode/backend.hpp"
#include "encode/miniflate.hpp"
#include "encode/rle.hpp"
#include "io/bytebuffer.hpp"

namespace xfc {
namespace {

std::vector<std::uint8_t> make_input(const std::string& kind, std::size_t n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> data(n);
  if (kind == "zeros") {
    // all zero
  } else if (kind == "random") {
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  } else if (kind == "text") {
    const std::string words[] = {"lossy ", "compression ", "scientific ",
                                 "data ", "cross-field ", "prediction "};
    std::string s;
    while (s.size() < n) s += words[rng.uniform_index(6)];
    std::memcpy(data.data(), s.data(), n);
  } else if (kind == "periodic") {
    for (std::size_t i = 0; i < n; ++i)
      data[i] = static_cast<std::uint8_t>((i % 37) * 7);
  } else if (kind == "lowentropy") {
    for (auto& b : data)
      b = static_cast<std::uint8_t>(rng.uniform_index(4) * 3);
  }
  return data;
}

struct FlateCase {
  const char* kind;
  std::size_t size;
};

class MiniflateRoundtrip : public ::testing::TestWithParam<FlateCase> {};

TEST_P(MiniflateRoundtrip, Exact) {
  const auto [kind, size] = GetParam();
  const auto input = make_input(kind, size, size * 131 + 7);
  const auto compressed = miniflate_compress(input);
  const auto output = miniflate_decompress(compressed);
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, MiniflateRoundtrip,
    ::testing::Values(FlateCase{"zeros", 0}, FlateCase{"zeros", 1},
                      FlateCase{"zeros", 3}, FlateCase{"zeros", 100000},
                      FlateCase{"random", 5}, FlateCase{"random", 4096},
                      FlateCase{"random", 200000}, FlateCase{"text", 10000},
                      FlateCase{"text", 120000}, FlateCase{"periodic", 64},
                      FlateCase{"periodic", 65536},
                      FlateCase{"periodic", 300000},
                      FlateCase{"lowentropy", 50000}));

TEST(Miniflate, CompressesRepetitiveData) {
  const auto input = make_input("periodic", 100000, 1);
  const auto compressed = miniflate_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(Miniflate, CompressesTextSubstantially) {
  const auto input = make_input("text", 100000, 2);
  const auto compressed = miniflate_compress(input);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(Miniflate, StoresIncompressibleDataWithTinyOverhead) {
  const auto input = make_input("random", 10000, 3);
  const auto compressed = miniflate_compress(input);
  EXPECT_LE(compressed.size(), input.size() + 16);
}

TEST(Miniflate, AllLevelsRoundtrip) {
  const auto input = make_input("text", 50000, 4);
  for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault,
                     MiniflateLevel::kBest}) {
    const auto compressed = miniflate_compress(input, level);
    EXPECT_EQ(miniflate_decompress(compressed), input);
  }
}

TEST(Miniflate, BestLevelNotWorseThanFastOnStructuredData) {
  const auto input = make_input("text", 120000, 5);
  const auto fast = miniflate_compress(input, MiniflateLevel::kFast);
  const auto best = miniflate_compress(input, MiniflateLevel::kBest);
  EXPECT_LE(best.size(), fast.size() + 64);
}

TEST(Miniflate, LongMatchAtWindowBoundary) {
  // A block recurring just inside the 64 KiB window.
  std::vector<std::uint8_t> input;
  const auto block = make_input("random", 300, 6);
  input.insert(input.end(), block.begin(), block.end());
  input.resize(65536 + 100, 0x77);
  input.insert(input.end(), block.begin(), block.end());
  const auto compressed = miniflate_compress(input);
  EXPECT_EQ(miniflate_decompress(compressed), input);
}

TEST(Miniflate, TruncatedStreamThrows) {
  const auto input = make_input("text", 10000, 7);
  auto compressed = miniflate_compress(input);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(miniflate_decompress(compressed), CorruptStream);
}

TEST(Miniflate, CorruptMethodByteThrows) {
  const auto input = make_input("text", 100, 8);
  auto compressed = miniflate_compress(input);
  // varint(100) is one byte; method byte follows.
  compressed[1] = 99;
  EXPECT_THROW(miniflate_decompress(compressed), CorruptStream);
}

TEST(Miniflate, EmptyInputThrowsOnDecodeOfEmptyBuffer) {
  EXPECT_THROW(miniflate_decompress({}), CorruptStream);
}

TEST(Miniflate, BlockSplitBoundarySizes) {
  // Inputs at and around the split threshold: the last block may be a
  // single byte, and the 1-block/2-block transition must be seamless.
  for (const std::size_t n :
       {kMiniflateSplitBlock - 1, kMiniflateSplitBlock,
        kMiniflateSplitBlock + 1, 2 * kMiniflateSplitBlock - 1,
        2 * kMiniflateSplitBlock, 2 * kMiniflateSplitBlock + 1}) {
    for (const char* kind : {"text", "periodic"}) {
      const auto input = make_input(kind, n, n);
      for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault}) {
        const auto compressed = miniflate_compress(input, level);
        EXPECT_EQ(miniflate_decompress(compressed), input)
            << kind << " size " << n;
      }
    }
  }
}

TEST(Miniflate, BlockSplitDecodesIdenticallyToSingleBlock) {
  // The block-split parse must stay invisible downstream: both the split
  // and the unsplit stream decode to the same bytes, and the split stream
  // is identical whichever thread count produced it (pinned by the mt4
  // ctest variant re-running this test under XFC_THREADS=4 — block
  // geometry depends only on the input size).
  const std::size_t n = 3 * kMiniflateSplitBlock + 137;
  for (const char* kind : {"text", "periodic", "random"}) {
    const auto input = make_input(kind, n, 99);
    for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault}) {
      const auto split = miniflate_compress_blocked(input, level, 0);
      const auto single = miniflate_compress_blocked(input, level, n);
      EXPECT_EQ(miniflate_decompress(split), input) << kind;
      EXPECT_EQ(miniflate_decompress(single), input) << kind;
      // And the default entry point is the split parse.
      EXPECT_EQ(miniflate_compress(input, level), split) << kind;
    }
  }
}

TEST(Miniflate, FuzzRoundtripAcrossLevelsAndShapes) {
  // Structured/pathological fuzz over all three levels: random sizes,
  // random content classes, incompressible tails, and repeat floods.
  Rng rng(20260727);
  const char* kinds[] = {"zeros", "random", "text", "periodic", "lowentropy"};
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = rng.uniform_index(1 << 16);
    const auto input = make_input(kinds[trial % 5], n, trial * 7919 + 1);
    for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault,
                       MiniflateLevel::kBest}) {
      const auto compressed = miniflate_compress(input, level);
      ASSERT_EQ(miniflate_decompress(compressed), input)
          << kinds[trial % 5] << " n=" << n;
    }
  }
}

TEST(Miniflate, PathologicalRepeatsRoundtripAndStayTiny) {
  // Worst cases for a hash-chain matcher: one byte repeated (every chain
  // entry collides), a two-byte alternation, and a kMinMatch-period loop.
  for (const std::size_t period : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    std::vector<std::uint8_t> input(500000);
    for (std::size_t i = 0; i < input.size(); ++i)
      input[i] = static_cast<std::uint8_t>((i % period) * 31 + 7);
    for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault,
                       MiniflateLevel::kBest}) {
      const auto compressed = miniflate_compress(input, level);
      EXPECT_LT(compressed.size(), input.size() / 50) << "period " << period;
      ASSERT_EQ(miniflate_decompress(compressed), input);
    }
  }
}

TEST(Miniflate, IncompressibleInputAcrossLevels) {
  const auto input = make_input("random", 300000, 4242);
  for (auto level : {MiniflateLevel::kFast, MiniflateLevel::kDefault,
                     MiniflateLevel::kBest}) {
    const auto compressed = miniflate_compress(input, level);
    EXPECT_LE(compressed.size(), input.size() + 16);
    ASSERT_EQ(miniflate_decompress(compressed), input);
  }
}

TEST(Rle, RoundtripRunsAndSingles) {
  for (const char* kind : {"zeros", "random", "periodic", "lowentropy"}) {
    const auto input = make_input(kind, 5000, 11);
    EXPECT_EQ(rle_decompress(rle_compress(input)), input);
  }
  EXPECT_TRUE(rle_decompress(rle_compress({})).empty());
}

TEST(Rle, CompressesConstantRuns) {
  const auto input = make_input("zeros", 100000, 12);
  EXPECT_LT(rle_compress(input).size(), 32u);
}

TEST(Rle, BadRunThrows) {
  ByteWriter w;
  w.varint(10);  // declared size 10
  w.u8(5);
  w.varint(20);  // run exceeds declared size
  auto bytes = w.take();
  EXPECT_THROW(rle_decompress(bytes), CorruptStream);
}

TEST(Backend, AutoPicksSmallest) {
  // Constant data: RLE wins by a mile; auto must be at least as good.
  const auto constant = make_input("zeros", 50000, 13);
  const auto rle = lossless_compress(constant, LosslessBackend::kRle);
  const auto autod = lossless_compress(constant, LosslessBackend::kAuto);
  EXPECT_LE(autod.size(), rle.size());
  EXPECT_EQ(lossless_decompress(autod), constant);
}

TEST(Backend, EveryBackendRoundtrips) {
  const auto input = make_input("text", 20000, 14);
  for (auto b : {LosslessBackend::kStore, LosslessBackend::kRle,
                 LosslessBackend::kMiniflate, LosslessBackend::kAuto}) {
    const auto c = lossless_compress(input, b);
    EXPECT_EQ(lossless_decompress(c), input);
  }
}

TEST(Backend, UnknownTagThrows) {
  std::vector<std::uint8_t> bogus{42, 1, 2, 3};
  EXPECT_THROW(lossless_decompress(bogus), CorruptStream);
  EXPECT_THROW(lossless_decompress({}), CorruptStream);
}

}  // namespace
}  // namespace xfc
