// Tests for the CNN framework: graph-built layer semantics,
// finite-difference gradient checks, optimizer convergence, serialization.
// (Op-level CheckGrad coverage lives in test_autodiff.cpp; these tests
// exercise the Layer descriptors' graph definitions.)

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/rng.hpp"
#include "nn/attention.hpp"
#include "nn/conv2d.hpp"
#include "nn/graph.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace xfc::nn {
namespace {

Tensor random_tensor(std::size_t n, std::size_t c, std::size_t h,
                     std::size_t w, Rng& rng, double scale = 1.0) {
  Tensor t(n, c, h, w);
  for (auto& v : t.vec()) v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

/// Builds a one-layer inference graph and runs x through it.
Tensor run_layer(Layer& layer, const Tensor& x) {
  Graph g(Graph::Mode::kInfer);
  const NodeRef in = g.input({x.n(), x.c(), x.h(), x.w()});
  const NodeRef out = layer.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();
  const GShape s = g.shape(out);
  Tensor y(s.n, s.c, s.h, s.w);
  std::copy(exec.value(out), exec.value(out) + y.size(), y.data());
  return y;
}

/// Scalar loss used by the gradient checks: sum of elementwise products
/// with a fixed random "probe" tensor (gives dense, nontrivial gradients).
double probe_loss(const float* y, const Tensor& probe) {
  double s = 0;
  for (std::size_t i = 0; i < probe.size(); ++i)
    s += static_cast<double>(y[i]) * probe.vec()[i];
  return s;
}

/// Checks dL/d(input) and dL/d(params) of a layer's graph definition
/// against central finite differences, seeding backward with the probe.
void check_gradients(Layer& layer, Tensor x, double tol = 2e-2,
                     double fd_eps = 1e-3) {
  Rng rng(12345);
  Graph g(Graph::Mode::kTrain);
  const NodeRef in =
      g.input({x.n(), x.c(), x.h(), x.w()}, /*needs_grad=*/true);
  const NodeRef out = layer.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();

  const GShape os = g.shape(out);
  Tensor probe = random_tensor(os.n, os.c, os.h, os.w, rng);
  g.zero_grad();
  exec.backward_from(out, probe.vec().data());

  const std::vector<float> gx(exec.grad(in), exec.grad(in) + x.size());
  auto params = g.params();
  std::vector<std::vector<float>> analytic;
  for (const Param& p : params) analytic.push_back(*p.grad);

  const auto loss_now = [&] {
    exec.forward();
    return probe_loss(exec.value(out), probe);
  };

  // Input gradient check on a sample of coordinates.
  for (std::size_t trial = 0; trial < 24; ++trial) {
    const std::size_t i = rng.uniform_index(x.size());
    const float orig = x.vec()[i];
    x.vec()[i] = orig + static_cast<float>(fd_eps);
    const double lp = loss_now();
    x.vec()[i] = orig - static_cast<float>(fd_eps);
    const double lm = loss_now();
    x.vec()[i] = orig;
    const double fd = (lp - lm) / (2 * fd_eps);
    EXPECT_NEAR(gx[i], fd, tol * std::max(1.0, std::abs(fd)))
        << "input grad at " << i;
  }

  // Parameter gradient check.
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    std::vector<float>& v = *params[pi].value;
    for (std::size_t trial = 0; trial < 12 && trial < v.size(); ++trial) {
      const std::size_t i = rng.uniform_index(v.size());
      const float orig = v[i];
      v[i] = orig + static_cast<float>(fd_eps);
      const double lp = loss_now();
      v[i] = orig - static_cast<float>(fd_eps);
      const double lm = loss_now();
      v[i] = orig;
      const double fd = (lp - lm) / (2 * fd_eps);
      EXPECT_NEAR(analytic[pi][i], fd, tol * std::max(1.0, std::abs(fd)))
          << "param " << pi << " grad at " << i;
    }
  }
}

TEST(Tensor, ShapeAndIndexing) {
  Tensor t(2, 3, 4, 5);
  EXPECT_EQ(t.size(), 120u);
  t(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t.vec()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
  EXPECT_EQ(t.plane(1, 2)[3 * 5 + 4], 9.0f);
}

TEST(ReLULayer, ForwardClampsNegatives) {
  ReLU relu;
  Tensor x(1, 1, 1, 4);
  x.vec() = {-1.0f, 0.0f, 2.0f, -0.5f};
  const Tensor y = run_layer(relu, x);
  EXPECT_EQ(y.vec(), (std::vector<float>{0.0f, 0.0f, 2.0f, 0.0f}));
}

TEST(ReLULayer, BackwardMasks) {
  ReLU relu;
  Tensor x(1, 1, 1, 4);
  x.vec() = {-1.0f, 0.5f, 2.0f, -3.0f};
  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({1, 1, 1, 4}, /*needs_grad=*/true);
  const NodeRef out = relu.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();
  const std::vector<float> seed{1.0f, 1.0f, 1.0f, 1.0f};
  exec.backward_from(out, seed.data());
  const float* gx = exec.grad(in);
  EXPECT_EQ(std::vector<float>(gx, gx + 4),
            (std::vector<float>{0.0f, 1.0f, 1.0f, 0.0f}));
}

TEST(LinearLayer, KnownComputation) {
  Rng rng(1);
  Linear lin(2, 1, true, rng);
  lin.weight() = {3.0f, -2.0f};
  lin.bias() = {0.5f};
  Tensor x(1, 2, 1, 1);
  x.vec() = {4.0f, 1.0f};
  const Tensor y = run_layer(lin, x);
  EXPECT_FLOAT_EQ(y.vec()[0], 3.0f * 4.0f - 2.0f * 1.0f + 0.5f);
}

TEST(LinearLayer, GradientCheck) {
  Rng rng(2);
  Linear lin(6, 4, true, rng);
  check_gradients(lin, random_tensor(3, 6, 1, 1, rng));
}

TEST(Conv2DLayer, IdentityKernelPassesThrough) {
  Rng rng(3);
  Conv2D conv(1, 1, 3, 1, false, rng);
  std::fill(conv.weight().begin(), conv.weight().end(), 0.0f);
  conv.weight()[4] = 1.0f;  // centre tap
  Tensor x = random_tensor(1, 1, 5, 7, rng);
  const Tensor y = run_layer(conv, x);
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_NEAR(y.vec()[i], x.vec()[i], 1e-6);
}

TEST(Conv2DLayer, KnownSmallConvolution) {
  Rng rng(4);
  Conv2D conv(1, 1, 3, 1, false, rng);
  std::fill(conv.weight().begin(), conv.weight().end(), 1.0f);
  Tensor x(1, 1, 3, 3);
  for (std::size_t i = 0; i < 9; ++i) x.vec()[i] = 1.0f;
  const Tensor y = run_layer(conv, x);
  // Centre sees all 9 ones, corner sees 4 (zero padding).
  EXPECT_FLOAT_EQ(y(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1), 6.0f);
}

TEST(Conv2DLayer, PointwiseMixesChannelsOnly) {
  Rng rng(5);
  Conv2D conv(2, 1, 1, 1, false, rng);
  conv.weight() = {2.0f, -1.0f};
  Tensor x(1, 2, 2, 2);
  for (std::size_t i = 0; i < 4; ++i) x.plane(0, 0)[i] = 3.0f;
  for (std::size_t i = 0; i < 4; ++i) x.plane(0, 1)[i] = 5.0f;
  const Tensor y = run_layer(conv, x);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_FLOAT_EQ(y.plane(0, 0)[i], 2.0f * 3.0f - 1.0f * 5.0f);
}

TEST(Conv2DLayer, DepthwiseKeepsChannelsIndependent) {
  Rng rng(6);
  Conv2D conv(2, 2, 3, 2, false, rng);  // depthwise
  // Channel 0: identity; channel 1: zero.
  std::fill(conv.weight().begin(), conv.weight().end(), 0.0f);
  conv.weight()[4] = 1.0f;
  Tensor x = random_tensor(1, 2, 4, 4, rng);
  const Tensor y = run_layer(conv, x);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(y.plane(0, 0)[i], x.plane(0, 0)[i], 1e-6);
    EXPECT_EQ(y.plane(0, 1)[i], 0.0f);
  }
}

TEST(Conv2DLayer, GradientCheckStandard) {
  Rng rng(7);
  Conv2D conv(3, 4, 3, 1, true, rng);
  check_gradients(conv, random_tensor(2, 3, 5, 6, rng));
}

TEST(Conv2DLayer, GradientCheckDepthwise) {
  Rng rng(8);
  Conv2D conv(4, 4, 3, 4, true, rng);
  check_gradients(conv, random_tensor(2, 4, 5, 5, rng));
}

TEST(Conv2DLayer, GradientCheckGrouped) {
  Rng rng(9);
  Conv2D conv(4, 6, 3, 2, true, rng);
  check_gradients(conv, random_tensor(1, 4, 6, 4, rng));
}

TEST(Conv2DLayer, GradientCheckPointwise) {
  Rng rng(10);
  Conv2D conv(5, 3, 1, 1, true, rng);
  check_gradients(conv, random_tensor(2, 5, 4, 4, rng));
}

// The k=5 / batched-grouped cases route through every im2col+GEMM code
// path (wide halo, grouped weight blocks, per-image weight-grad GEMMs).

TEST(Conv2DLayer, GradientCheckKernel5) {
  Rng rng(30);
  Conv2D conv(2, 3, 5, 1, true, rng);
  check_gradients(conv, random_tensor(2, 2, 7, 6, rng));
}

TEST(Conv2DLayer, GradientCheckGroupedBatched) {
  Rng rng(31);
  Conv2D conv(6, 4, 3, 2, true, rng);
  check_gradients(conv, random_tensor(3, 6, 5, 7, rng));
}

TEST(Conv2DLayer, RejectsBadHyperparameters) {
  Rng rng(11);
  EXPECT_THROW(Conv2D(3, 4, 2, 1, true, rng), InvalidArgument);  // even k
  EXPECT_THROW(Conv2D(3, 4, 3, 2, true, rng), InvalidArgument);  // 3 % 2
}

TEST(ChannelAttentionLayer, OutputIsScaledInput) {
  Rng rng(12);
  ChannelAttention att(4, 2, rng);
  Tensor x = random_tensor(2, 4, 6, 6, rng);
  const Tensor y = run_layer(att, x);
  // Each output plane must be a scalar multiple of its input plane,
  // with the scalar in (0, 1) (sigmoid output).
  for (std::size_t b = 0; b < 2; ++b)
    for (std::size_t c = 0; c < 4; ++c) {
      const float* xi = x.plane(b, c);
      const float* yi = y.plane(b, c);
      // find a nonzero reference element
      std::size_t r = 0;
      while (r < 36 && std::abs(xi[r]) < 1e-3) ++r;
      ASSERT_LT(r, 36u);
      const float s = yi[r] / xi[r];
      EXPECT_GT(s, 0.0f);
      EXPECT_LT(s, 1.0f);
      for (std::size_t i = 0; i < 36; ++i)
        EXPECT_NEAR(yi[i], xi[i] * s, 1e-4);
    }
}

TEST(ChannelAttentionLayer, GradientCheck) {
  Rng rng(13);
  ChannelAttention att(4, 2, rng);
  check_gradients(att, random_tensor(2, 4, 5, 5, rng), 4e-2);
}

TEST(ChannelAttentionLayer, RejectsIndivisibleReduction) {
  Rng rng(14);
  EXPECT_THROW(ChannelAttention(5, 2, rng), InvalidArgument);
}

TEST(SequentialModel, GradientCheckThroughStack) {
  Rng rng(15);
  Sequential seq;
  seq.add(std::make_unique<Conv2D>(2, 4, 3, 1, true, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Conv2D>(4, 4, 3, 4, true, rng));  // depthwise
  seq.add(std::make_unique<Conv2D>(4, 4, 1, 1, true, rng));  // pointwise
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<ChannelAttention>(4, 2, rng));
  seq.add(std::make_unique<Conv2D>(4, 1, 3, 1, true, rng));
  check_gradients(seq, random_tensor(1, 2, 6, 6, rng), 5e-2);
}

TEST(SequentialModel, ParamCountSumsLayers) {
  Rng rng(16);
  Sequential seq;
  seq.add(std::make_unique<Conv2D>(2, 3, 3, 1, true, rng));  // 2*3*9+3 = 57
  seq.add(std::make_unique<Linear>(4, 2, true, rng));        // 8+2 = 10
  EXPECT_EQ(seq.param_count(), 67u);
}

TEST(MseLoss, ValueAndGradient) {
  Tensor a(1, 1, 1, 2), b(1, 1, 1, 2);
  a.vec() = {1.0f, 3.0f};
  b.vec() = {0.0f, 1.0f};
  auto [loss, grad] = mse_loss(a, b);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_FLOAT_EQ(grad.vec()[0], 2.0f * 1.0f / 2.0f);
  EXPECT_FLOAT_EQ(grad.vec()[1], 2.0f * 2.0f / 2.0f);
}

TEST(AdamOptimizer, ConvergesOnQuadratic) {
  // Minimise ||w - target||^2 using the Param plumbing directly.
  std::vector<float> w{5.0f, -3.0f, 8.0f};
  std::vector<float> g(3, 0.0f);
  const std::vector<float> target{1.0f, 2.0f, -1.0f};
  Adam adam({{&w, &g}}, {.lr = 0.05});
  for (int it = 0; it < 2000; ++it) {
    for (std::size_t i = 0; i < 3; ++i) g[i] = 2.0f * (w[i] - target[i]);
    adam.step();
  }
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(w[i], target[i], 1e-2);
}

TEST(AdamOptimizer, TrainsTinyCnnToFitMapping) {
  Rng rng(17);
  Sequential net;
  net.add(std::make_unique<Conv2D>(1, 4, 3, 1, true, rng));
  net.add(std::make_unique<ReLU>());
  net.add(std::make_unique<Conv2D>(4, 1, 3, 1, true, rng));

  // Learn a 2x blur-free scaling: y = 2x (learnable by convs).
  Tensor x = random_tensor(4, 1, 8, 8, rng, 0.5);
  Tensor y = x;
  for (auto& v : y.vec()) v *= 2.0f;

  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({4, 1, 8, 8});
  const NodeRef tgt = g.input({4, 1, 8, 8});
  g.mse_loss(net.append(g, in), tgt);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.bind(tgt, y.data());

  Adam adam(g.params(), {.lr = 2e-2});
  double first = 0, last = 0;
  for (int epoch = 0; epoch < 150; ++epoch) {
    g.zero_grad();
    exec.forward();
    exec.backward();
    adam.step();
    if (epoch == 0) first = exec.loss();
    last = exec.loss();
  }
  EXPECT_LT(last, first * 0.05);
}

TEST(AdamOptimizer, DecoupledWeightDecayShrinksWeights) {
  std::vector<float> w{10.0f, -10.0f};
  std::vector<float> g(2, 0.0f);  // zero gradient: only decay acts
  Adam adam({{&w, &g}}, {.lr = 0.1, .weight_decay = 0.1});
  for (int it = 0; it < 100; ++it) adam.step();
  EXPECT_LT(std::abs(w[0]), 10.0f);
  EXPECT_LT(std::abs(w[1]), 10.0f);
  EXPECT_GT(w[0], 0.0f);  // decay shrinks, never flips sign this fast
}

TEST(AdamOptimizer, IterationCounter) {
  std::vector<float> w{1.0f};
  std::vector<float> g{0.0f};
  Adam adam({{&w, &g}}, AdamOptions{});
  EXPECT_EQ(adam.iterations(), 0u);
  adam.step();
  adam.step();
  EXPECT_EQ(adam.iterations(), 2u);
}

TEST(LinearLayer, NoBiasVariant) {
  Rng rng(20);
  Linear lin(3, 2, /*bias=*/false, rng);
  EXPECT_EQ(lin.param_count(), 6u);  // weights only
  Graph g(Graph::Mode::kTrain);
  lin.append(g, g.input({2, 3, 1, 1}));
  EXPECT_EQ(g.params().size(), 1u);
  check_gradients(lin, random_tensor(2, 3, 1, 1, rng));
}

TEST(Conv2DLayer, NoBiasGradientCheck) {
  Rng rng(21);
  Conv2D conv(2, 3, 3, 1, /*bias=*/false, rng);
  Graph g(Graph::Mode::kTrain);
  conv.append(g, g.input({1, 2, 5, 5}));
  EXPECT_EQ(g.params().size(), 1u);
  check_gradients(conv, random_tensor(1, 2, 5, 5, rng));
}

TEST(SequentialModel, ZeroGradClearsAllParams) {
  Rng rng(22);
  Sequential seq;
  seq.add(std::make_unique<Conv2D>(1, 2, 3, 1, true, rng));
  seq.add(std::make_unique<ChannelAttention>(2, 2, rng));

  Tensor x = random_tensor(1, 1, 6, 6, rng);
  Graph g(Graph::Mode::kTrain);
  const NodeRef in = g.input({1, 1, 6, 6});
  const NodeRef out = seq.append(g, in);
  GraphExec exec(g, tls_workspace());
  exec.bind(in, x.data());
  exec.forward();
  const GShape os = g.shape(out);
  Tensor probe = random_tensor(os.n, os.c, os.h, os.w, rng);
  exec.backward_from(out, probe.vec().data());

  bool any_nonzero = false;
  for (auto& p : g.params())
    for (float v : *p.grad)
      if (v != 0.0f) any_nonzero = true;
  ASSERT_TRUE(any_nonzero);

  g.zero_grad();
  for (auto& p : g.params())
    for (float v : *p.grad) EXPECT_EQ(v, 0.0f);
}

TEST(ChannelAttentionLayer, SerializeRoundtripForwardEquality) {
  Rng rng(23);
  ChannelAttention att(4, 2, rng);
  ByteWriter w;
  att.serialize(w);
  const auto bytes = w.take();
  ByteReader r(bytes);
  auto restored = ChannelAttention::deserialize(r);

  Tensor x = random_tensor(2, 4, 5, 5, rng);
  const Tensor y1 = run_layer(att, x);
  const Tensor y2 = run_layer(*restored, x);
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_EQ(y1.vec()[i], y2.vec()[i]);
}

TEST(MseLoss, RejectsMismatchedShapes) {
  Tensor a(1, 1, 2, 2), b(1, 1, 2, 3);
  EXPECT_THROW(mse_loss(a, b), InvalidArgument);
}

TEST(Serialization, SequentialRoundtripPreservesForward) {
  Rng rng(18);
  Sequential seq;
  seq.add(std::make_unique<Conv2D>(2, 4, 3, 1, true, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<ChannelAttention>(4, 2, rng));
  seq.add(std::make_unique<Conv2D>(4, 2, 1, 1, true, rng));

  const auto bytes = seq.save_bytes();
  auto restored = Sequential::load_bytes(bytes);
  EXPECT_EQ(restored->param_count(), seq.param_count());

  Tensor x = random_tensor(1, 2, 5, 5, rng);
  const Tensor y1 = run_layer(seq, x);
  const Tensor y2 = run_layer(*restored, x);
  ASSERT_EQ(y1.size(), y2.size());
  for (std::size_t i = 0; i < y1.size(); ++i)
    EXPECT_EQ(y1.vec()[i], y2.vec()[i]);  // bit-exact
}

TEST(Serialization, UnknownLayerKindThrows) {
  ByteWriter w;
  w.varint(1);
  w.str("warp_drive");
  const auto bytes = w.take();
  EXPECT_THROW(Sequential::load_bytes(bytes), CorruptStream);
}

TEST(Serialization, TruncatedModelThrows) {
  Rng rng(19);
  Sequential seq;
  seq.add(std::make_unique<Conv2D>(2, 4, 3, 1, true, rng));
  auto bytes = seq.save_bytes();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Sequential::load_bytes(bytes), CorruptStream);
}

}  // namespace
}  // namespace xfc::nn
